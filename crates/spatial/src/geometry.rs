//! Planar geometry helpers.
//!
//! Synthetic networks live in a local planar coordinate system measured in
//! metres, so Euclidean geometry is exact. The helpers here are shared by
//! the routing heuristics (A* lower bounds) and by the trajectory crate's
//! GPS simulation and HMM map matching (point-to-segment projections).

use serde::{Deserialize, Serialize};

/// A point in the local planar coordinate system (metres).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point from easting/northing metres.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point, in metres.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when comparing).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }
}

/// Result of projecting a point onto a segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Projection {
    /// The closest point on the segment.
    pub point: Point,
    /// Distance from the query point to [`Projection::point`], in metres.
    pub distance: f64,
    /// Normalised position along the segment in `[0, 1]`
    /// (0 = segment start, 1 = segment end).
    pub t: f64,
}

/// Projects `p` onto the segment `a -> b`.
///
/// Degenerate (zero-length) segments project everything onto `a`.
pub fn project_onto_segment(p: &Point, a: &Point, b: &Point) -> Projection {
    let abx = b.x - a.x;
    let aby = b.y - a.y;
    let len_sq = abx * abx + aby * aby;
    if len_sq <= f64::EPSILON {
        return Projection {
            point: *a,
            distance: p.distance(a),
            t: 0.0,
        };
    }
    let t = (((p.x - a.x) * abx + (p.y - a.y) * aby) / len_sq).clamp(0.0, 1.0);
    let point = Point {
        x: a.x + t * abx,
        y: a.y + t * aby,
    };
    Projection {
        point,
        distance: p.distance(&point),
        t,
    }
}

/// Distance from point `p` to segment `a -> b`, in metres.
#[inline]
pub fn point_segment_distance(p: &Point, a: &Point, b: &Point) -> f64 {
    project_onto_segment(p, a, b).distance
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-2.0, 7.5);
        let b = Point::new(11.0, -3.25);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.x - 5.0).abs() < 1e-12 && (mid.y - 10.0).abs() < 1e-12);
    }

    #[test]
    fn projection_interior() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let p = Point::new(4.0, 3.0);
        let proj = project_onto_segment(&p, &a, &b);
        assert!((proj.t - 0.4).abs() < 1e-12);
        assert!((proj.distance - 3.0).abs() < 1e-12);
        assert!((proj.point.x - 4.0).abs() < 1e-12);
        assert!(proj.point.y.abs() < 1e-12);
    }

    #[test]
    fn projection_clamps_to_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let before = Point::new(-5.0, 1.0);
        let after = Point::new(15.0, -2.0);
        assert_eq!(project_onto_segment(&before, &a, &b).t, 0.0);
        assert_eq!(project_onto_segment(&after, &a, &b).t, 1.0);
    }

    #[test]
    fn projection_degenerate_segment() {
        let a = Point::new(2.0, 2.0);
        let p = Point::new(5.0, 6.0);
        let proj = project_onto_segment(&p, &a, &a);
        assert_eq!(proj.point, a);
        assert!((proj.distance - 5.0).abs() < 1e-12);
    }
}
