//! Planar geometry helpers.
//!
//! Synthetic networks live in a local planar coordinate system measured in
//! metres, so Euclidean geometry is exact. The helpers here are shared by
//! the routing heuristics (A* lower bounds) and by the trajectory crate's
//! GPS simulation and HMM map matching (point-to-segment projections).

use serde::{Deserialize, Serialize};

/// A point in the local planar coordinate system (metres).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point from easting/northing metres.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point, in metres.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when comparing).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }
}

/// Result of projecting a point onto a segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Projection {
    /// The closest point on the segment.
    pub point: Point,
    /// Distance from the query point to [`Projection::point`], in metres.
    pub distance: f64,
    /// Normalised position along the segment in `[0, 1]`
    /// (0 = segment start, 1 = segment end).
    pub t: f64,
}

/// Projects `p` onto the segment `a -> b`.
///
/// Degenerate (zero-length) segments project everything onto `a`.
pub fn project_onto_segment(p: &Point, a: &Point, b: &Point) -> Projection {
    let abx = b.x - a.x;
    let aby = b.y - a.y;
    let len_sq = abx * abx + aby * aby;
    if len_sq <= f64::EPSILON {
        return Projection {
            point: *a,
            distance: p.distance(a),
            t: 0.0,
        };
    }
    let t = (((p.x - a.x) * abx + (p.y - a.y) * aby) / len_sq).clamp(0.0, 1.0);
    let point = Point {
        x: a.x + t * abx,
        y: a.y + t * aby,
    };
    Projection {
        point,
        distance: p.distance(&point),
        t,
    }
}

/// Distance from point `p` to segment `a -> b`, in metres.
#[inline]
pub fn point_segment_distance(p: &Point, a: &Point, b: &Point) -> f64 {
    project_onto_segment(p, a, b).distance
}

/// Result of projecting a point onto a polyline
/// ([`project_onto_polyline`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolylineProjection {
    /// The closest point across all segments of the polyline.
    pub point: Point,
    /// Distance from the query point to [`PolylineProjection::point`],
    /// in metres.
    pub distance: f64,
    /// *Arclength fraction* along the whole polyline in `[0, 1]`
    /// (0 = first point, 1 = last point) — the polyline counterpart of
    /// [`Projection::t`], comparable across polylines of different
    /// segment counts.
    pub t: f64,
    /// Index of the segment holding the closest point: segment `i`
    /// spans `pts[i] -> pts[i + 1]`. Lets callers recover the *local*
    /// direction at the projection (the chord direction of a folded
    /// polyline can point anywhere).
    pub segment: usize,
}

/// Projects `p` onto the polyline `pts` (closest point over every
/// segment). Ties between segments keep the earliest segment, so a
/// vertex shared by two segments reports the incoming one.
///
/// A single-point polyline behaves like a degenerate segment (everything
/// projects onto that point at `t = 0`).
///
/// # Panics
/// If `pts` is empty.
pub fn project_onto_polyline(p: &Point, pts: &[Point]) -> PolylineProjection {
    assert!(!pts.is_empty(), "cannot project onto an empty polyline");
    if pts.len() == 1 {
        return PolylineProjection {
            point: pts[0],
            distance: p.distance(&pts[0]),
            t: 0.0,
            segment: 0,
        };
    }
    let total: f64 = pts.windows(2).map(|w| w[0].distance(&w[1])).sum();
    let mut best = PolylineProjection {
        point: pts[0],
        distance: f64::INFINITY,
        t: 0.0,
        segment: 0,
    };
    let mut prefix = 0.0;
    for (i, w) in pts.windows(2).enumerate() {
        let seg = project_onto_segment(p, &w[0], &w[1]);
        let seg_len = w[0].distance(&w[1]);
        if seg.distance < best.distance {
            let along = prefix + seg.t * seg_len;
            best = PolylineProjection {
                point: seg.point,
                distance: seg.distance,
                t: if total > 0.0 {
                    (along / total).clamp(0.0, 1.0)
                } else {
                    0.0
                },
                segment: i,
            };
        }
        prefix += seg_len;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-2.0, 7.5);
        let b = Point::new(11.0, -3.25);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.x - 5.0).abs() < 1e-12 && (mid.y - 10.0).abs() < 1e-12);
    }

    #[test]
    fn projection_interior() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let p = Point::new(4.0, 3.0);
        let proj = project_onto_segment(&p, &a, &b);
        assert!((proj.t - 0.4).abs() < 1e-12);
        assert!((proj.distance - 3.0).abs() < 1e-12);
        assert!((proj.point.x - 4.0).abs() < 1e-12);
        assert!(proj.point.y.abs() < 1e-12);
    }

    #[test]
    fn projection_clamps_to_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let before = Point::new(-5.0, 1.0);
        let after = Point::new(15.0, -2.0);
        assert_eq!(project_onto_segment(&before, &a, &b).t, 0.0);
        assert_eq!(project_onto_segment(&after, &a, &b).t, 1.0);
    }

    #[test]
    fn projection_degenerate_segment() {
        let a = Point::new(2.0, 2.0);
        let p = Point::new(5.0, 6.0);
        let proj = project_onto_segment(&p, &a, &a);
        assert_eq!(proj.point, a);
        assert!((proj.distance - 5.0).abs() < 1e-12);
    }

    #[test]
    fn polyline_projection_picks_closest_segment() {
        // U-shaped polyline: down, across, up. A point inside the U is
        // closest to the bottom segment.
        let pts = [
            Point::new(0.0, 100.0),
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 100.0),
        ];
        let p = Point::new(50.0, 30.0);
        let proj = project_onto_polyline(&p, &pts);
        assert_eq!(proj.segment, 1);
        assert!((proj.distance - 30.0).abs() < 1e-12);
        assert!((proj.point.x - 50.0).abs() < 1e-12 && proj.point.y.abs() < 1e-12);
        // Arclength fraction: 100 (first leg) + 50 into the 300 total.
        assert!((proj.t - 0.5).abs() < 1e-12);
    }

    #[test]
    fn polyline_projection_t_is_monotone_along_the_line() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(0.0, 300.0),
            Point::new(40.0, 300.0),
            Point::new(40.0, 0.0),
        ];
        let probes = [
            Point::new(-5.0, 50.0),
            Point::new(-5.0, 250.0),
            Point::new(20.0, 305.0),
            Point::new(45.0, 250.0),
            Point::new(45.0, 50.0),
        ];
        let mut last = -1.0;
        for p in &probes {
            let t = project_onto_polyline(p, &pts).t;
            assert!(t > last, "t must increase along the hairpin, got {t}");
            last = t;
        }
    }

    #[test]
    fn polyline_projection_matches_segment_on_two_points() {
        let (a, b) = (Point::new(3.0, -2.0), Point::new(50.0, 17.0));
        let p = Point::new(20.0, 30.0);
        let seg = project_onto_segment(&p, &a, &b);
        let poly = project_onto_polyline(&p, &[a, b]);
        assert_eq!(poly.point, seg.point);
        assert_eq!(poly.distance, seg.distance);
        assert_eq!(poly.segment, 0);
        assert!((poly.t - seg.t).abs() < 1e-15);
    }

    #[test]
    fn polyline_projection_single_point() {
        let a = Point::new(1.0, 1.0);
        let proj = project_onto_polyline(&Point::new(4.0, 5.0), &[a]);
        assert_eq!(proj.point, a);
        assert!((proj.distance - 5.0).abs() < 1e-12);
        assert_eq!(proj.t, 0.0);
    }
}
