//! A small Prometheus-text-format parser — enough to validate that a
//! `STATS` scrape is well-formed and to read series values back in
//! smoke tests and the `loadgen` cross-checks. Not a general client:
//! it parses the subset [`crate::MetricsSnapshot::to_prometheus_text`]
//! emits (which is the subset a real Prometheus scraper needs).

/// One parsed series sample.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

/// Parses a text exposition. Comment lines (`# …`) are skipped; every
/// other non-empty line must be `name[{labels}] value`. Returns an
/// error naming the first malformed line.
pub fn parse(text: &str) -> Result<Vec<ParsedSample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let sample = parse_line(line).map_err(|e| format!("line {}: {e}: {line}", lineno + 1))?;
        out.push(sample);
    }
    Ok(out)
}

fn parse_line(line: &str) -> Result<ParsedSample, String> {
    let (series, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| "missing value".to_string())?;
    let value: f64 = value.parse().map_err(|_| "unparseable value".to_string())?;
    let (name, labels) = match series.split_once('{') {
        None => (series.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| "unterminated label set".to_string())?;
            (name.to_string(), parse_labels(body)?)
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err("invalid metric name".to_string());
    }
    Ok(ParsedSample {
        name,
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| "label missing '='".to_string())?;
        let key = rest[..eq].to_string();
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err("label value not quoted".to_string());
        }
        rest = &rest[1..];
        let end = rest
            .find('"')
            .ok_or_else(|| "unterminated label value".to_string())?;
        labels.push((key, rest[..end].to_string()));
        rest = &rest[end + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.is_empty() {
            return Err("junk after label value".to_string());
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_promtext_parses_plain_and_labelled_series() {
        let text = "# HELP x_total help\n# TYPE x_total counter\nx_total 3\nlat_bucket{le=\"+Inf\",shard=\"0\"} 17\n# EOF\n";
        let parsed = parse(text).expect("well-formed");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "x_total");
        assert_eq!(parsed[0].value, 3.0);
        assert_eq!(parsed[1].labels.len(), 2);
        assert_eq!(parsed[1].labels[0], ("le".to_string(), "+Inf".to_string()));
    }

    #[test]
    fn obs_promtext_rejects_malformed_lines() {
        assert!(parse("novalue\n").is_err());
        assert!(parse("bad name 3\n").is_err());
        assert!(parse("x{unterminated 3\n").is_err());
        assert!(parse("x{k=unquoted} 3\n").is_err());
    }
}
