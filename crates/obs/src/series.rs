//! Exact sample-storing percentiles for *offline* consumers.
//!
//! The atomically-scraped [`crate::Histogram`] trades per-sample
//! precision for a fixed footprint — right for a live server, wrong for
//! a benchmark that holds a few thousand samples anyway and wants exact
//! order statistics. [`Series`] is that second case, and the single
//! percentile implementation the bench binaries share (`loadgen`,
//! `simulate_traffic`, `bench_routing`) instead of per-binary
//! `Vec<f64>` sort-and-index helpers.

/// A growable sample set with exact percentiles.
#[derive(Debug, Clone, Default)]
pub struct Series {
    samples: Vec<f64>,
    sorted: bool,
}

impl Series {
    pub fn new() -> Self {
        Series::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        Series {
            samples: Vec::with_capacity(n),
            sorted: true,
        }
    }

    /// Adds one sample. Non-finite samples are rejected with a panic —
    /// a NaN would poison every order statistic silently.
    pub fn push(&mut self, v: f64) {
        assert!(v.is_finite(), "non-finite sample {v} recorded");
        self.samples.push(v);
        self.sorted = false;
    }

    /// Bulk append.
    pub fn extend(&mut self, vs: impl IntoIterator<Item = f64>) {
        for v in vs {
            self.push(v);
        }
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// The exact `p`-th percentile (`p` in `[0, 100]`) by
    /// nearest-rank-with-interpolation: rank `p/100 · (n−1)` over the
    /// sorted samples, linearly interpolated between the two straddling
    /// samples. Panics on an empty series.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!(!self.is_empty(), "percentile of an empty series");
        self.ensure_sorted();
        let rank = (p.clamp(0.0, 100.0) / 100.0) * (self.samples.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            self.samples[lo]
        } else {
            let frac = rank - lo as f64;
            self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
        }
    }

    /// The median (`percentile(50)` — upper median for even counts when
    /// samples coincide, interpolated otherwise).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Smallest sample. Panics on an empty series.
    pub fn min(&mut self) -> f64 {
        self.ensure_sorted();
        self.samples[0]
    }

    /// Largest sample. Panics on an empty series.
    pub fn max(&mut self) -> f64 {
        self.ensure_sorted();
        *self.samples.last().expect("non-empty")
    }

    /// Arithmetic mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }
}

impl FromIterator<f64> for Series {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Series::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_series_exact_percentiles() {
        let mut s: Series = (1..=100).map(|i| i as f64).collect();
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.median(), 50.5); // interpolated between 50 and 51
        assert_eq!(s.percentile(99.0), 99.01);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
        assert_eq!(s.mean(), 50.5);
    }

    #[test]
    fn obs_series_single_sample() {
        let mut s = Series::new();
        s.push(42.0);
        assert_eq!(s.median(), 42.0);
        assert_eq!(s.percentile(99.9), 42.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn obs_series_rejects_nan() {
        Series::new().push(f64::NAN);
    }
}
