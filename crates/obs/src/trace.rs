//! A lightweight span/event tracer.
//!
//! Each participating thread registers a [`TraceHandle`] once and then
//! records spans ([`TraceHandle::span`] — enter/exit pairs sharing a
//! span id) and point events ([`TraceHandle::event`]) into its own
//! fixed-capacity ring buffer: `(span id, &'static str label, monotonic
//! nanos since tracer start, u64 arg)`. Labels are static strings and
//! rings are preallocated at registration, so steady-state recording
//! allocates nothing; the per-ring mutex is uncontended (one writer —
//! the owning thread — and the occasional drain). Rings overwrite their
//! oldest entries when full and count what they dropped.
//!
//! [`Tracer::drain`] empties every ring into one time-sorted record
//! list — the on-demand debugging view, never a steady-state cost.
//!
//! Like the registry, [`Tracer::disabled`] is a construction-time no-op
//! sink: handles exist, record nothing, and cost one branch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What a trace entry marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A span opened ([`TraceHandle::span`]).
    Enter,
    /// The matching span closed (guard drop).
    Exit,
    /// A point event with no duration.
    Event,
}

#[derive(Debug, Clone, Copy)]
struct RawEvent {
    span: u64,
    label: &'static str,
    kind: TraceKind,
    nanos: u64,
    arg: u64,
}

/// One drained trace entry, stamped with the ring's thread label.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// The registering thread's label (e.g. `route-shard-3`).
    pub thread: String,
    /// Span id shared by the Enter/Exit pair; `0` for point events.
    pub span: u64,
    /// Static label passed at record time.
    pub label: &'static str,
    pub kind: TraceKind,
    /// Monotonic nanoseconds since the tracer was created.
    pub nanos: u64,
    /// Free-form argument (batch size, generation, …).
    pub arg: u64,
}

struct RingBuf {
    events: Vec<RawEvent>,
    /// Next write slot.
    head: usize,
    /// Live entries (≤ capacity).
    len: usize,
    /// Entries overwritten before being drained.
    dropped: u64,
}

struct Ring {
    thread: String,
    buf: Mutex<RingBuf>,
}

struct TracerInner {
    base: Instant,
    capacity: usize,
    rings: Mutex<Vec<Arc<Ring>>>,
    next_span: AtomicU64,
}

/// The tracer: owns the monotonic clock base and the ring directory.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// An enabled tracer whose rings hold `capacity` entries each.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                base: Instant::now(),
                capacity: capacity.max(2),
                rings: Mutex::new(Vec::new()),
                next_span: AtomicU64::new(1),
            })),
        }
    }

    /// The no-op sink.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Whether this tracer actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers a ring for the calling component (typically one per
    /// worker thread), preallocating its buffer. The handle is the only
    /// allocation this thread's tracing ever performs.
    pub fn register(&self, thread: impl Into<String>) -> TraceHandle {
        let Some(inner) = &self.inner else {
            return TraceHandle {
                ring: None,
                inner: None,
            };
        };
        let ring = Arc::new(Ring {
            thread: thread.into(),
            buf: Mutex::new(RingBuf {
                events: Vec::with_capacity(inner.capacity),
                head: 0,
                len: 0,
                dropped: 0,
            }),
        });
        inner
            .rings
            .lock()
            .expect("tracer lock")
            .push(Arc::clone(&ring));
        TraceHandle {
            ring: Some(ring),
            inner: Some(Arc::clone(inner)),
        }
    }

    /// Empties every ring into one list sorted by timestamp. Dropped
    /// (overwritten) entries are gone — the count of them per ring is
    /// appended as a synthetic `trace_dropped` event when non-zero.
    pub fn drain(&self) -> Vec<TraceRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let rings: Vec<Arc<Ring>> = inner.rings.lock().expect("tracer lock").clone();
        let mut out = Vec::new();
        for ring in rings {
            let mut buf = ring.buf.lock().expect("ring lock");
            let cap = buf.events.len();
            let start = if buf.len == cap {
                buf.head // full ring: oldest is the next write slot
            } else {
                0
            };
            for i in 0..buf.len {
                let e = buf.events[(start + i) % cap.max(1)];
                out.push(TraceRecord {
                    thread: ring.thread.clone(),
                    span: e.span,
                    label: e.label,
                    kind: e.kind,
                    nanos: e.nanos,
                    arg: e.arg,
                });
            }
            if buf.dropped > 0 {
                out.push(TraceRecord {
                    thread: ring.thread.clone(),
                    span: 0,
                    label: "trace_dropped",
                    kind: TraceKind::Event,
                    nanos: inner.base.elapsed().as_nanos() as u64,
                    arg: buf.dropped,
                });
            }
            buf.head = 0;
            buf.len = 0;
            buf.dropped = 0;
            buf.events.clear();
        }
        out.sort_by_key(|r| r.nanos);
        out
    }
}

/// A per-thread recording handle (see [`Tracer::register`]).
#[derive(Clone)]
pub struct TraceHandle {
    ring: Option<Arc<Ring>>,
    inner: Option<Arc<TracerInner>>,
}

impl TraceHandle {
    /// A handle that records nothing.
    pub fn noop() -> Self {
        TraceHandle {
            ring: None,
            inner: None,
        }
    }

    fn record(&self, span: u64, label: &'static str, kind: TraceKind, arg: u64) {
        let (Some(ring), Some(inner)) = (&self.ring, &self.inner) else {
            return;
        };
        let nanos = inner.base.elapsed().as_nanos() as u64;
        let ev = RawEvent {
            span,
            label,
            kind,
            nanos,
            arg,
        };
        let mut buf = ring.buf.lock().expect("ring lock");
        if buf.events.len() < inner.capacity {
            buf.events.push(ev);
            buf.len += 1;
            buf.head = buf.len % inner.capacity;
        } else {
            let head = buf.head;
            if buf.len == inner.capacity {
                buf.dropped += 1;
            } else {
                buf.len += 1;
            }
            buf.events[head] = ev;
            buf.head = (head + 1) % inner.capacity;
        }
    }

    /// Records a point event.
    pub fn event(&self, label: &'static str, arg: u64) {
        self.record(0, label, TraceKind::Event, arg);
    }

    /// Opens a span: records `Enter` now and `Exit` when the returned
    /// guard drops, both under a fresh span id.
    pub fn span(&self, label: &'static str, arg: u64) -> SpanGuard<'_> {
        let id = self
            .inner
            .as_ref()
            .map_or(0, |i| i.next_span.fetch_add(1, Ordering::Relaxed));
        self.record(id, label, TraceKind::Enter, arg);
        SpanGuard {
            handle: self,
            id,
            label,
            arg,
        }
    }
}

/// Closes its span on drop.
pub struct SpanGuard<'a> {
    handle: &'a TraceHandle,
    id: u64,
    label: &'static str,
    arg: u64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.handle
            .record(self.id, self.label, TraceKind::Exit, self.arg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_trace_span_pairs_share_an_id() {
        let tracer = Tracer::new(64);
        let h = tracer.register("worker-0");
        {
            let _s = h.span("batch", 7);
            h.event("swap", 3);
        }
        let records = tracer.drain();
        assert_eq!(records.len(), 3);
        let enter = records
            .iter()
            .find(|r| r.kind == TraceKind::Enter)
            .expect("enter");
        let exit = records
            .iter()
            .find(|r| r.kind == TraceKind::Exit)
            .expect("exit");
        assert_eq!(enter.span, exit.span);
        assert_eq!(enter.label, "batch");
        assert_eq!(enter.arg, 7);
        assert!(enter.nanos <= exit.nanos);
        assert!(records.iter().any(|r| r.label == "swap" && r.arg == 3));
        // Drained means drained.
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn obs_trace_ring_overwrites_oldest_and_counts_drops() {
        let tracer = Tracer::new(4);
        let h = tracer.register("w");
        for i in 0..10u64 {
            h.event("tick", i);
        }
        let records = tracer.drain();
        // 4 newest ticks + 1 synthetic drop marker.
        let ticks: Vec<u64> = records
            .iter()
            .filter(|r| r.label == "tick")
            .map(|r| r.arg)
            .collect();
        assert_eq!(ticks, vec![6, 7, 8, 9]);
        let dropped = records
            .iter()
            .find(|r| r.label == "trace_dropped")
            .expect("drop marker");
        assert_eq!(dropped.arg, 6);
    }

    #[test]
    fn obs_trace_disabled_is_noop() {
        let tracer = Tracer::disabled();
        let h = tracer.register("w");
        let _s = h.span("x", 0);
        h.event("y", 1);
        assert!(tracer.drain().is_empty());
        assert!(!tracer.is_enabled());
    }

    #[test]
    fn obs_trace_multi_thread_drain_is_time_sorted() {
        let tracer = Tracer::new(32);
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = tracer.register(format!("t{t}"));
                s.spawn(move || {
                    for i in 0..5u64 {
                        h.event("work", i);
                    }
                });
            }
        });
        let records = tracer.drain();
        assert_eq!(records.len(), 20);
        assert!(records.windows(2).all(|w| w[0].nanos <= w[1].nanos));
    }
}
