//! Zero-dependency observability for the PathRank serving stack.
//!
//! Everything the engine, route server, customization path and map
//! matcher report at runtime flows through this crate — which, like
//! `pathrank-serve`, is **std-only**: no metrics framework, no tracing
//! framework, no allocation on the hot path.
//!
//! # Design
//!
//! * [`Registry`] hands out cheap cloneable handles — [`Counter`],
//!   [`Gauge`], [`Histogram`] — registered once by `(name, labels)`.
//!   A counter is a set of per-shard cells padded to cache lines; the
//!   hot path is **one relaxed atomic add** to the calling thread's
//!   cell, and shards are summed only at scrape time.
//! * [`Histogram`] buckets are log-bucketed ("power-of-two-ish": exact
//!   up to 16, then four sub-buckets per octave), so recording is one
//!   bucket index computation from the value's leading zeros plus two
//!   relaxed adds, and [`HistogramSnapshot::percentile`] interpolates
//!   p50/p99/p999 linearly inside the hit bucket.
//! * The **obs-off escape hatch** is a construction-time choice, not an
//!   `Option` threaded through call sites: [`Registry::disabled`]
//!   returns a registry whose handles are no-op sinks — same types,
//!   same call sites, a single predictable branch per record.
//! * [`Tracer`] is a lightweight span/event tracer: fixed-capacity
//!   per-thread ring buffers of `(span id, &'static str label,
//!   monotonic nanos, arg)` events, written under an uncontended
//!   per-ring mutex and drained on demand. Steady state allocates
//!   nothing — rings are preallocated and overwrite their oldest
//!   entries.
//! * [`MetricsSnapshot`] is the typed scrape: Prometheus text format
//!   ([`MetricsSnapshot::to_prometheus_text`]), hand-rolled JSON
//!   ([`MetricsSnapshot::to_json`]), and
//!   [`MetricsSnapshot::delta_since`] for benchmarks that window a
//!   timed region out of cumulative counters.
//! * [`Series`] is the *offline* percentile implementation (exact,
//!   sample-storing) shared by the bench binaries — one percentile
//!   code path in the workspace instead of per-binary `Vec<f64>`
//!   helpers.

pub mod histogram;
pub mod promtext;
pub mod registry;
pub mod series;
pub mod trace;

pub use histogram::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Counter, CounterSample, Gauge, GaugeSample, MetricsSnapshot, Registry};
pub use series::Series;
pub use trace::{SpanGuard, TraceHandle, TraceKind, TraceRecord, Tracer};
