//! The lock-light metrics registry.
//!
//! Handles are registered once (under the registry mutex) and recorded
//! against forever after without any lock: a counter add is one relaxed
//! atomic add to the calling thread's cache-line-padded shard cell, a
//! gauge set is one relaxed store, a histogram record is a bucket index
//! computation plus two relaxed adds. Shards are summed only at scrape
//! time ([`Registry::snapshot`]).

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{Histogram, HistogramCore, HistogramSnapshot};

/// Number of counter shards. A power of two so the thread-slot hash is
/// a mask; 16 cells × 128 B = 2 KiB per counter, plenty for the shard
/// counts this stack runs (thread-per-core workers).
const COUNTER_SHARDS: usize = 16;

/// One shard cell, padded to its own cache line (two lines on systems
/// with 128-byte prefetch pairs) so concurrent writers never false-share.
#[repr(align(128))]
struct CounterCell(AtomicU64);

struct ShardedCounter {
    cells: [CounterCell; COUNTER_SHARDS],
}

impl ShardedCounter {
    fn new() -> Self {
        ShardedCounter {
            cells: std::array::from_fn(|_| CounterCell(AtomicU64::new(0))),
        }
    }

    fn total(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// Round-robin shard slot per thread: assigned once on first use, then
/// a plain thread-local read. Distinct threads spread over distinct
/// cells, so concurrent `add`s land on different cache lines.
fn thread_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed) & (COUNTER_SHARDS - 1);
    }
    SLOT.with(|s| *s)
}

/// A cloneable monotonic counter handle. Handles from
/// [`Registry::disabled`] are no-op sinks.
#[derive(Clone)]
pub struct Counter {
    cells: Option<Arc<ShardedCounter>>,
}

impl Counter {
    /// A sink that counts nothing.
    pub fn noop() -> Self {
        Counter { cells: None }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`: one relaxed atomic add to this thread's shard cell.
    #[inline]
    pub fn add(&self, n: u64) {
        self.add_in_shard(thread_shard(), n);
    }

    /// The calling thread's shard slot. A per-thread component (one
    /// engine per worker) resolves this once at construction and then
    /// records through [`Counter::add_in_shard`], skipping the
    /// thread-local lookup on every add.
    pub fn shard_hint() -> usize {
        thread_shard()
    }

    /// Adds `n` to a pinned shard slot (out-of-range slots wrap). Any
    /// slot is valid — sharing one across threads only costs cache-line
    /// contention, never correctness.
    #[inline]
    pub fn add_in_shard(&self, shard: usize, n: u64) {
        if let Some(cells) = &self.cells {
            cells.cells[shard & (COUNTER_SHARDS - 1)]
                .0
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current total across shards (scrape-path only).
    pub fn value(&self) -> u64 {
        self.cells.as_ref().map_or(0, |c| c.total())
    }

    /// Whether this handle actually counts (false for no-op sinks).
    pub fn is_enabled(&self) -> bool {
        self.cells.is_some()
    }
}

/// A cloneable gauge handle (current-value semantics, may go down).
#[derive(Clone)]
pub struct Gauge {
    cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// A sink that tracks nothing.
    pub fn noop() -> Self {
        Gauge { cell: None }
    }

    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(c) = &self.cell {
            c.store(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(c) = &self.cell {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    pub fn value(&self) -> i64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

enum MetricKind {
    Counter(Arc<ShardedCounter>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

struct MetricEntry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    kind: MetricKind,
}

#[derive(Default)]
struct RegistryInner {
    metrics: Mutex<Vec<MetricEntry>>,
}

/// The metrics registry: a named set of counters, gauges and
/// histograms, scraped as one [`MetricsSnapshot`].
///
/// Cloning shares the underlying store. [`Registry::disabled`] is the
/// obs-off escape hatch: the same registration calls succeed but hand
/// out no-op handles, so instrumented code needs no `Option` plumbing
/// and pays one predictable branch per record.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

impl Registry {
    /// An enabled registry.
    pub fn new() -> Self {
        Registry {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// The no-op sink: every handle it hands out records nothing and a
    /// scrape returns an empty snapshot.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether this registry actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or re-fetches) a counter. Registration is idempotent
    /// on `(name, labels)`: a second call returns a handle to the same
    /// cells, so independent components can share a series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::noop();
        };
        let labels = own_labels(labels);
        let mut metrics = inner.metrics.lock().expect("registry lock");
        if let Some(e) = find(&metrics, name, &labels) {
            match &e.kind {
                MetricKind::Counter(c) => {
                    return Counter {
                        cells: Some(Arc::clone(c)),
                    }
                }
                _ => panic!("metric {name} already registered with another type"),
            }
        }
        let cells = Arc::new(ShardedCounter::new());
        metrics.push(MetricEntry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            kind: MetricKind::Counter(Arc::clone(&cells)),
        });
        Counter { cells: Some(cells) }
    }

    /// Registers (or re-fetches) a gauge; idempotent like
    /// [`Registry::counter`].
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::noop();
        };
        let labels = own_labels(labels);
        let mut metrics = inner.metrics.lock().expect("registry lock");
        if let Some(e) = find(&metrics, name, &labels) {
            match &e.kind {
                MetricKind::Gauge(c) => {
                    return Gauge {
                        cell: Some(Arc::clone(c)),
                    }
                }
                _ => panic!("metric {name} already registered with another type"),
            }
        }
        let cell = Arc::new(AtomicI64::new(0));
        metrics.push(MetricEntry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            kind: MetricKind::Gauge(Arc::clone(&cell)),
        });
        Gauge { cell: Some(cell) }
    }

    /// Registers (or re-fetches) a histogram; idempotent like
    /// [`Registry::counter`].
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::noop();
        };
        let labels = own_labels(labels);
        let mut metrics = inner.metrics.lock().expect("registry lock");
        if let Some(e) = find(&metrics, name, &labels) {
            match &e.kind {
                MetricKind::Histogram(c) => {
                    return Histogram {
                        core: Some(Arc::clone(c)),
                    }
                }
                _ => panic!("metric {name} already registered with another type"),
            }
        }
        let core = Arc::new(HistogramCore::new());
        metrics.push(MetricEntry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            kind: MetricKind::Histogram(Arc::clone(&core)),
        });
        Histogram { core: Some(core) }
    }

    /// Scrapes every registered metric into a typed snapshot. Counters
    /// sum their shards here — the only place shard cells are read.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let Some(inner) = &self.inner else {
            return snap;
        };
        let metrics = inner.metrics.lock().expect("registry lock");
        for e in metrics.iter() {
            match &e.kind {
                MetricKind::Counter(c) => snap.counters.push(CounterSample {
                    name: e.name.clone(),
                    help: e.help.clone(),
                    labels: e.labels.clone(),
                    value: c.total(),
                }),
                MetricKind::Gauge(c) => snap.gauges.push(GaugeSample {
                    name: e.name.clone(),
                    help: e.help.clone(),
                    labels: e.labels.clone(),
                    value: c.load(Ordering::Relaxed),
                }),
                MetricKind::Histogram(c) => {
                    let (counts, sum) = c.snapshot_counts();
                    snap.histograms.push(HistogramSnapshot::from_counts(
                        e.name.clone(),
                        e.labels.clone(),
                        counts,
                        sum,
                    ));
                }
            }
        }
        // Scrape order is registration order; sort for a stable text
        // exposition regardless of which component registered first.
        snap.counters
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        snap.gauges
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        snap.histograms
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        snap
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = labels
        .iter()
        .map(|(k, val)| (k.to_string(), val.to_string()))
        .collect();
    v.sort();
    v
}

fn find<'a>(
    metrics: &'a [MetricEntry],
    name: &str,
    labels: &[(String, String)],
) -> Option<&'a MetricEntry> {
    metrics
        .iter()
        .find(|e| e.name == name && e.labels == labels)
}

/// One counter series in a scrape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    pub name: String,
    pub help: String,
    pub labels: Vec<(String, String)>,
    pub value: u64,
}

/// One gauge series in a scrape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSample {
    pub name: String,
    pub help: String,
    pub labels: Vec<(String, String)>,
    pub value: i64,
}

/// A full scrape of a [`Registry`]: the typed API `loadgen` and the
/// `STATS` TCP command both read.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSample>,
    pub gauges: Vec<GaugeSample>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Sum of every counter series matching `name` and carrying all of
    /// `labels` (subset match, so `&[]` sums the whole family).
    pub fn counter_total(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name && has_labels(&c.labels, labels))
            .map(|c| c.value)
            .sum()
    }

    /// The gauge series exactly matching `name` + `labels`, if present.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && exact_labels(&g.labels, labels))
            .map(|g| g.value)
    }

    /// The first histogram matching `name` and carrying all of `labels`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name && has_labels(&h.labels, labels))
    }

    /// Counter/histogram difference against an earlier snapshot of the
    /// same registry — how `loadgen` cuts its timed window out of
    /// cumulative server counters. Gauges keep their current value
    /// (deltas are meaningless for current-value semantics). Series
    /// absent from `earlier` pass through unchanged.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|c| {
                let before = earlier
                    .counters
                    .iter()
                    .find(|e| e.name == c.name && e.labels == c.labels)
                    .map_or(0, |e| e.value);
                CounterSample {
                    value: c.value.saturating_sub(before),
                    ..c.clone()
                }
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                match earlier
                    .histograms
                    .iter()
                    .find(|e| e.name == h.name && e.labels == h.labels)
                {
                    Some(e) => h.delta_since(e),
                    None => h.clone(),
                }
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Prometheus text exposition (v0.0.4): `# HELP` / `# TYPE` headers,
    /// histograms as cumulative `_bucket{le=…}` series plus `_sum` /
    /// `_count`, terminated with `# EOF` so line-protocol clients know
    /// where the scrape ends.
    pub fn to_prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut last_header = String::new();
        let mut header = |out: &mut String, name: &str, help: &str, kind: &str| {
            if last_header != name {
                let _ = writeln!(out, "# HELP {name} {help}");
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_header = name.to_string();
            }
        };
        for c in &self.counters {
            header(&mut out, &c.name, &c.help, "counter");
            let _ = writeln!(out, "{}{} {}", c.name, fmt_labels(&c.labels, &[]), c.value);
        }
        for g in &self.gauges {
            header(&mut out, &g.name, &g.help, "gauge");
            let _ = writeln!(out, "{}{} {}", g.name, fmt_labels(&g.labels, &[]), g.value);
        }
        for h in &self.histograms {
            header(&mut out, &h.name, "", "histogram");
            let mut cum = 0u64;
            for (i, &c) in h.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cum += c;
                let le = crate::histogram::bucket_bounds(i).1;
                let le = if le == u64::MAX {
                    "+Inf".to_string()
                } else {
                    le.to_string()
                };
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    h.name,
                    fmt_labels(&h.labels, &[("le", &le)]),
                    cum
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                h.name,
                fmt_labels(&h.labels, &[("le", "+Inf")]),
                h.count
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                h.name,
                fmt_labels(&h.labels, &[]),
                h.sum
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                h.name,
                fmt_labels(&h.labels, &[]),
                h.count
            );
        }
        out.push_str("# EOF\n");
        out
    }

    /// Hand-rolled JSON form (the workspace deliberately has no serde
    /// backend): counters/gauges as `{name, labels, value}` rows,
    /// histograms with count, sum and interpolated p50/p99/p999.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"name\":{:?},\"labels\":{},\"value\":{}}}",
                if i > 0 { "," } else { "" },
                c.name,
                json_labels(&c.labels),
                c.value
            );
        }
        out.push_str("],\"gauges\":[");
        for (i, g) in self.gauges.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"name\":{:?},\"labels\":{},\"value\":{}}}",
                if i > 0 { "," } else { "" },
                g.name,
                json_labels(&g.labels),
                g.value
            );
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"name\":{:?},\"labels\":{},\"count\":{},\"sum\":{},\"p50\":{:.1},\"p99\":{:.1},\"p999\":{:.1}}}",
                if i > 0 { "," } else { "" },
                h.name,
                json_labels(&h.labels),
                h.count,
                h.sum,
                h.percentile(50.0),
                h.percentile(99.0),
                h.percentile(99.9)
            );
        }
        out.push_str("]}");
        out
    }
}

fn has_labels(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    want.iter()
        .all(|(k, v)| have.iter().any(|(hk, hv)| hk == k && hv == v))
}

fn exact_labels(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len() && has_labels(have, want)
}

fn fmt_labels(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
    parts.extend(extra.iter().map(|(k, v)| format!("{k}={v:?}")));
    format!("{{{}}}", parts.join(","))
}

fn json_labels(labels: &[(String, String)]) -> String {
    let parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k:?}:{v:?}")).collect();
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_counter_shards_sum_at_scrape() {
        let reg = Registry::new();
        let c = reg.counter("requests_total", "requests", &[("backend", "ch")]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter_total("requests_total", &[("backend", "ch")]),
            8000
        );
        assert_eq!(snap.counter_total("requests_total", &[]), 8000);
    }

    #[test]
    fn obs_registration_is_idempotent_by_name_and_labels() {
        let reg = Registry::new();
        let a = reg.counter("x_total", "", &[("k", "1")]);
        let b = reg.counter("x_total", "", &[("k", "1")]);
        let other = reg.counter("x_total", "", &[("k", "2")]);
        a.add(3);
        b.add(4);
        other.add(10);
        assert_eq!(a.value(), 7);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_total("x_total", &[("k", "1")]), 7);
        assert_eq!(snap.counter_total("x_total", &[]), 17);
    }

    #[test]
    fn obs_gauge_set_add_sub() {
        let reg = Registry::new();
        let g = reg.gauge("depth", "", &[("shard", "0")]);
        g.set(5);
        g.add(3);
        g.sub(2);
        assert_eq!(g.value(), 6);
        assert_eq!(
            reg.snapshot().gauge_value("depth", &[("shard", "0")]),
            Some(6)
        );
        assert_eq!(reg.snapshot().gauge_value("depth", &[("shard", "9")]), None);
    }

    #[test]
    fn obs_disabled_registry_is_a_noop_sink() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("x_total", "", &[]);
        let g = reg.gauge("g", "", &[]);
        let h = reg.histogram("h", "", &[]);
        c.add(10);
        g.set(5);
        h.record(7);
        assert_eq!(c.value(), 0);
        assert!(!c.is_enabled());
        assert_eq!(g.value(), 0);
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn obs_concurrent_merge_is_deterministic_at_scrape() {
        // Two runs recording the same multiset from different thread
        // interleavings must scrape identically: shard sums and bucket
        // counts are plain u64 additions, associative and exact.
        let scrape = || {
            let reg = Registry::new();
            let c = reg.counter("n_total", "", &[]);
            let h = reg.histogram("lat", "", &[]);
            std::thread::scope(|s| {
                for t in 0..6 {
                    let c = c.clone();
                    let h = h.clone();
                    s.spawn(move || {
                        for i in 0..500u64 {
                            c.add(t as u64 + 1);
                            h.record(i * 37 % 4096);
                        }
                    });
                }
            });
            let snap = reg.snapshot();
            (
                snap.counter_total("n_total", &[]),
                snap.histogram("lat", &[]).expect("registered").clone(),
            )
        };
        let (c1, h1) = scrape();
        let (c2, h2) = scrape();
        assert_eq!(c1, c2);
        assert_eq!(h1.counts, h2.counts);
        assert_eq!(h1.sum, h2.sum);
        assert_eq!(
            h1.percentile(99.0).to_bits(),
            h2.percentile(99.0).to_bits(),
            "interpolated percentiles must be bitwise deterministic"
        );
    }

    #[test]
    fn obs_snapshot_delta_since_windows_counters() {
        let reg = Registry::new();
        let c = reg.counter("served_total", "", &[]);
        let h = reg.histogram("lat", "", &[]);
        c.add(10);
        h.record(100);
        let before = reg.snapshot();
        c.add(5);
        h.record(200);
        h.record(300);
        let delta = reg.snapshot().delta_since(&before);
        assert_eq!(delta.counter_total("served_total", &[]), 5);
        assert_eq!(delta.histogram("lat", &[]).expect("present").count, 2);
    }

    #[test]
    fn obs_prometheus_text_shape() {
        let reg = Registry::new();
        reg.counter(
            "pathrank_requests_total",
            "served requests",
            &[("backend", "ch")],
        )
        .add(3);
        reg.gauge("pathrank_queue_depth", "queued", &[("shard", "0")])
            .set(2);
        let h = reg.histogram("pathrank_latency_ns", "", &[]);
        h.record(5);
        h.record(700);
        let text = reg.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE pathrank_requests_total counter"));
        assert!(text.contains("pathrank_requests_total{backend=\"ch\"} 3"));
        assert!(text.contains("pathrank_queue_depth{shard=\"0\"} 2"));
        assert!(text.contains("# TYPE pathrank_latency_ns histogram"));
        assert!(text.contains("pathrank_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("pathrank_latency_ns_count 2"));
        assert!(text.contains("pathrank_latency_ns_sum 705"));
        assert!(text.ends_with("# EOF\n"));
        // And the text parses back through the bundled parser.
        let parsed = crate::promtext::parse(&text).expect("scrape must parse");
        assert!(parsed
            .iter()
            .any(|s| s.name == "pathrank_requests_total" && s.value == 3.0));
    }

    #[test]
    fn obs_json_shape() {
        let reg = Registry::new();
        reg.counter("a_total", "", &[("k", "v")]).add(1);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a_total\""));
        assert!(json.contains("\"k\":\"v\""));
    }
}
