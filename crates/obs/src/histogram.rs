//! Log-bucketed latency histograms.
//!
//! Values are non-negative integers in whatever unit the caller picks
//! (the serving stack records nanoseconds for durations and raw counts
//! for sizes). The bucket layout is "power-of-two-ish": values below 16
//! get an exact unit-width bucket each, and every octave above that is
//! split into four sub-buckets (two mantissa bits), bounding the
//! within-bucket relative error at 1/4 before interpolation and far
//! below that after it. 256 buckets cover the whole `u64` range, so a
//! histogram is a fixed 2 KiB of atomics — no resizing, no allocation,
//! recording is a leading-zeros bucket computation plus two relaxed
//! atomic adds (bucket and sum).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Total number of buckets: 16 exact + 60 octaves × 4 sub-buckets.
pub const BUCKETS: usize = 256;

/// The bucket a value lands in: identity below 16, then
/// `16 + 4·(exponent − 4) + mantissa₂` where `exponent` is the position
/// of the leading one and `mantissa₂` the next two bits.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros() as usize;
        let m = ((v >> (e - 2)) & 3) as usize;
        16 + (e - 4) * 4 + m
    }
}

/// `[lower, upper)` value range of bucket `idx`. The topmost bucket's
/// upper bound saturates at `u64::MAX`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    assert!(idx < BUCKETS, "bucket index out of range");
    if idx < 16 {
        (idx as u64, idx as u64 + 1)
    } else {
        let k = idx - 16;
        let e = 4 + k / 4;
        let m = (k % 4) as u64;
        let lo = (4 + m) << (e - 2);
        let hi = lo.saturating_add(1u64 << (e - 2));
        (lo, hi)
    }
}

pub(crate) struct HistogramCore {
    buckets: Box<[AtomicU64; BUCKETS]>,
    sum: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        // `AtomicU64` has no const array init on stable without unsafe;
        // build through a Vec once at registration time.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = match v.into_boxed_slice().try_into() {
            Ok(b) => b,
            Err(_) => unreachable!("vec was built with exactly BUCKETS slots"),
        };
        HistogramCore {
            buckets,
            sum: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn snapshot_counts(&self) -> ([u64; BUCKETS], u64) {
        let mut counts = [0u64; BUCKETS];
        for (i, b) in self.buckets.iter().enumerate() {
            counts[i] = b.load(Ordering::Relaxed);
        }
        (counts, self.sum.load(Ordering::Relaxed))
    }
}

/// A cloneable histogram handle. Handles from [`crate::Registry::disabled`]
/// are no-op sinks: same type, same call sites, one predictable branch.
#[derive(Clone)]
pub struct Histogram {
    pub(crate) core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// A sink that records nothing (what disabled registries hand out).
    pub fn noop() -> Self {
        Histogram { core: None }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.core {
            core.record(v);
        }
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Whether this handle actually records (false for no-op sinks).
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }
}

/// One histogram's scrape: per-bucket counts plus total count and sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric family name.
    pub name: String,
    /// Label pairs, sorted by key at registration.
    pub labels: Vec<(String, String)>,
    /// Per-bucket observation counts (not cumulative).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all recorded values (wrapping at `u64::MAX`).
    pub sum: u64,
}

impl HistogramSnapshot {
    pub(crate) fn from_counts(
        name: String,
        labels: Vec<(String, String)>,
        counts: [u64; BUCKETS],
        sum: u64,
    ) -> Self {
        let count = counts.iter().sum();
        HistogramSnapshot {
            name,
            labels,
            counts: counts.to_vec(),
            count,
            sum,
        }
    }

    /// The `p`-th percentile (`p` in `[0, 100]`), linearly interpolated
    /// inside the bucket the rank lands in. Returns `0.0` on an empty
    /// histogram. Deterministic for a given recorded multiset — bucket
    /// counts are plain sums, so concurrent writers cannot perturb it.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (p.clamp(0.0, 100.0) / 100.0) * self.count as f64;
        let target = target.max(1.0); // rank of the first observation
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = cum;
            cum += c;
            if (cum as f64) >= target {
                let (lo, hi) = bucket_bounds(i);
                let frac = (target - before as f64) / c as f64;
                return lo as f64 + frac * (hi - lo) as f64;
            }
        }
        // All mass consumed (p == 100 with float rounding): top bucket.
        let last = self
            .counts
            .iter()
            .rposition(|&c| c > 0)
            .expect("count > 0 implies a non-empty bucket");
        bucket_bounds(last).1 as f64
    }

    /// Mean of recorded values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-wise difference against an earlier snapshot of the same
    /// histogram — the timed-window view benchmarks cut out of
    /// cumulative counts. Saturates at zero per bucket.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .zip(earlier.counts.iter().chain(std::iter::repeat(&0)))
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            name: self.name.clone(),
            labels: self.labels.clone(),
            counts,
            count,
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_bucket_index_is_monotone_and_exhaustive() {
        // Exact unit buckets below 16.
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
        }
        // Indices never decrease and every value falls inside its
        // bucket's bounds.
        let mut last = 0usize;
        let mut v = 0u64;
        while v < u64::MAX / 2 {
            let idx = bucket_index(v);
            assert!(idx >= last, "bucket index regressed at {v}");
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v < hi, "{v} outside bucket {idx} [{lo},{hi})");
            last = idx;
            v = v.saturating_add(v / 2).saturating_add(1);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        let (lo, hi) = bucket_bounds(BUCKETS - 1);
        assert!(lo < hi && hi == u64::MAX);
    }

    #[test]
    fn obs_bucket_bounds_tile_the_line() {
        // Consecutive buckets share a boundary: no gaps, no overlaps.
        for idx in 0..BUCKETS - 1 {
            let (_, hi) = bucket_bounds(idx);
            let (lo_next, _) = bucket_bounds(idx + 1);
            assert_eq!(hi, lo_next, "gap between buckets {idx} and {}", idx + 1);
        }
        assert_eq!(bucket_bounds(0).0, 0);
    }

    #[test]
    fn obs_percentile_interpolates_within_bucket() {
        let mut counts = [0u64; BUCKETS];
        // 100 observations of the exact value 7 (a unit-width bucket).
        counts[bucket_index(7)] = 100;
        let h = HistogramSnapshot::from_counts("t".into(), vec![], counts, 700);
        for p in [1.0, 50.0, 99.0, 99.9] {
            let v = h.percentile(p);
            assert!((7.0..8.0).contains(&v), "p{p} = {v} escaped bucket [7,8)");
        }
        assert_eq!(h.mean(), 7.0);
    }

    #[test]
    fn obs_percentile_splits_bimodal_mass() {
        let mut counts = [0u64; BUCKETS];
        counts[bucket_index(1)] = 90; // 90 fast
        counts[bucket_index(1 << 20)] = 10; // 10 slow
        let h = HistogramSnapshot::from_counts("t".into(), vec![], counts, 0);
        assert!(h.percentile(50.0) < 2.0);
        let p99 = h.percentile(99.0);
        let (lo, hi) = bucket_bounds(bucket_index(1 << 20));
        assert!(
            (lo as f64) <= p99 && p99 <= hi as f64,
            "p99 = {p99} outside slow bucket"
        );
        let p0 = h.percentile(0.0);
        assert!((1.0..2.0).contains(&p0), "p0 = {p0} outside fast bucket");
    }

    #[test]
    fn obs_percentile_empty_is_zero() {
        let h = HistogramSnapshot::from_counts("t".into(), vec![], [0; BUCKETS], 0);
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn obs_histogram_delta_since_windows_counts() {
        let mut a = [0u64; BUCKETS];
        a[3] = 5;
        a[40] = 2;
        let mut b = a;
        b[3] = 9;
        b[41] = 1;
        let early = HistogramSnapshot::from_counts("t".into(), vec![], a, 100);
        let late = HistogramSnapshot::from_counts("t".into(), vec![], b, 180);
        let d = late.delta_since(&early);
        assert_eq!(d.counts[3], 4);
        assert_eq!(d.counts[40], 0);
        assert_eq!(d.counts[41], 1);
        assert_eq!(d.count, 5);
        assert_eq!(d.sum, 80);
    }

    #[test]
    fn obs_noop_histogram_records_nothing() {
        let h = Histogram::noop();
        h.record(42);
        h.record_duration(Duration::from_micros(5));
        assert!(!h.is_enabled());
    }
}
