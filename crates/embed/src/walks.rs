//! Second-order biased random walks (the node2vec walk model).
//!
//! A walk at vertex `v` that arrived from `t` chooses the next vertex `x`
//! among `v`'s out-neighbours with unnormalised probability
//!
//! * `1/p` if `x == t` (return),
//! * `1`   if `x` is also a neighbour of `t` (stay close, BFS-like),
//! * `1/q` otherwise (move outward, DFS-like),
//!
//! each multiplied by the edge weight (we use 1 for road networks, as the
//! paper's embedding is purely topological).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pathrank_spatial::graph::Graph;

/// Walk generation parameters.
#[derive(Debug, Clone)]
pub struct WalkConfig {
    /// Walks started per vertex.
    pub walks_per_vertex: usize,
    /// Length of each walk (number of vertices).
    pub walk_length: usize,
    /// Return parameter `p` (small p → walks backtrack often).
    pub p: f64,
    /// In-out parameter `q` (small q → walks explore outward).
    pub q: f64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            walks_per_vertex: 10,
            walk_length: 40,
            p: 1.0,
            q: 0.5,
        }
    }
}

/// Pre-sorted adjacency used for the O(log d) "neighbour of t" test.
struct SortedAdjacency {
    neighbors: Vec<Vec<u32>>,
}

impl SortedAdjacency {
    fn new(g: &Graph) -> Self {
        let mut neighbors: Vec<Vec<u32>> = Vec::with_capacity(g.vertex_count());
        for v in g.vertices() {
            let mut ns: Vec<u32> = g.out_edges(v).map(|(w, _)| w.0).collect();
            ns.sort_unstable();
            neighbors.push(ns);
        }
        SortedAdjacency { neighbors }
    }

    #[inline]
    fn contains(&self, v: u32, x: u32) -> bool {
        self.neighbors[v as usize].binary_search(&x).is_ok()
    }

    #[inline]
    fn of(&self, v: u32) -> &[u32] {
        &self.neighbors[v as usize]
    }
}

/// Generates all walks for `g` under `cfg`, deterministically from `seed`.
/// Returns one `Vec<u32>` of vertex ids per walk.
pub fn generate_walks(g: &Graph, cfg: &WalkConfig, seed: u64) -> Vec<Vec<u32>> {
    assert!(cfg.p > 0.0 && cfg.q > 0.0, "p and q must be positive");
    let adj = SortedAdjacency::new(g);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut walks = Vec::with_capacity(g.vertex_count() * cfg.walks_per_vertex);
    let mut weights: Vec<f64> = Vec::new();

    for round in 0..cfg.walks_per_vertex {
        let _ = round;
        for start in 0..g.vertex_count() as u32 {
            let mut walk = Vec::with_capacity(cfg.walk_length);
            walk.push(start);
            let mut prev: Option<u32> = None;
            let mut cur = start;
            while walk.len() < cfg.walk_length {
                let ns = adj.of(cur);
                if ns.is_empty() {
                    break;
                }
                let next = match prev {
                    None => ns[rng.gen_range(0..ns.len())],
                    Some(t) => {
                        weights.clear();
                        weights.extend(ns.iter().map(|&x| {
                            if x == t {
                                1.0 / cfg.p
                            } else if adj.contains(t, x) {
                                1.0
                            } else {
                                1.0 / cfg.q
                            }
                        }));
                        ns[sample_index(&weights, &mut rng)]
                    }
                };
                walk.push(next);
                prev = Some(cur);
                cur = next;
            }
            walks.push(walk);
        }
    }
    walks
}

/// Samples an index proportional to `weights` (linear scan — out-degrees in
/// road networks are tiny, so this beats building an alias table per step).
#[inline]
fn sample_index(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut r = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        r -= w;
        if r <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathrank_spatial::builder::GraphBuilder;
    use pathrank_spatial::generators::{grid_network, GridConfig};
    use pathrank_spatial::geometry::Point;
    use pathrank_spatial::graph::{EdgeAttrs, RoadCategory, VertexId};

    #[test]
    fn walks_have_requested_shape() {
        let g = grid_network(&GridConfig::small_test(), 1);
        let cfg = WalkConfig {
            walks_per_vertex: 3,
            walk_length: 12,
            p: 1.0,
            q: 1.0,
        };
        let walks = generate_walks(&g, &cfg, 5);
        assert_eq!(walks.len(), 3 * g.vertex_count());
        for w in &walks {
            assert_eq!(w.len(), 12, "strongly connected grid: full-length walks");
        }
    }

    #[test]
    fn walks_follow_edges() {
        let g = grid_network(&GridConfig::small_test(), 1);
        let walks = generate_walks(&g, &WalkConfig::default(), 5);
        for w in walks.iter().take(30) {
            for pair in w.windows(2) {
                assert!(
                    g.find_edge(VertexId(pair[0]), VertexId(pair[1])).is_some(),
                    "walk steps must follow directed edges"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = grid_network(&GridConfig::small_test(), 1);
        let cfg = WalkConfig::default();
        assert_eq!(generate_walks(&g, &cfg, 9), generate_walks(&g, &cfg, 9));
        assert_ne!(generate_walks(&g, &cfg, 9), generate_walks(&g, &cfg, 10));
    }

    #[test]
    fn dead_end_truncates_walk() {
        // 0 -> 1 -> 2, no way back: walks from 0 stop at 2.
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1.0, 0.0));
        let v2 = b.add_vertex(Point::new(2.0, 0.0));
        let a = EdgeAttrs::with_default_speed(1.0, RoadCategory::Rural);
        b.add_edge(v0, v1, a).unwrap();
        b.add_edge(v1, v2, a).unwrap();
        let g = b.build();
        let cfg = WalkConfig {
            walks_per_vertex: 1,
            walk_length: 10,
            p: 1.0,
            q: 1.0,
        };
        let walks = generate_walks(&g, &cfg, 1);
        assert_eq!(walks[0], vec![0, 1, 2]);
        assert_eq!(walks[2], vec![2]);
    }

    #[test]
    fn low_p_increases_backtracking() {
        // On a cycle where every vertex has exactly two out-neighbours, the
        // previous vertex is always a candidate: tiny p must produce more
        // immediate returns than huge p.
        let mut b = GraphBuilder::new();
        let n = 20;
        let vs: Vec<_> = (0..n)
            .map(|i| {
                b.add_vertex(Point::new(
                    (i as f64).cos() * 100.0,
                    (i as f64).sin() * 100.0,
                ))
            })
            .collect();
        let a = EdgeAttrs::with_default_speed(10.0, RoadCategory::Rural);
        for i in 0..n {
            b.add_bidirectional(vs[i], vs[(i + 1) % n], a).unwrap();
        }
        let g = b.build();

        let count_backtracks = |p: f64, seed: u64| {
            let cfg = WalkConfig {
                walks_per_vertex: 5,
                walk_length: 30,
                p,
                q: 1.0,
            };
            let walks = generate_walks(&g, &cfg, seed);
            let mut backtracks = 0usize;
            for w in &walks {
                for win in w.windows(3) {
                    if win[0] == win[2] {
                        backtracks += 1;
                    }
                }
            }
            backtracks
        };
        let low_p = count_backtracks(0.05, 42);
        let high_p = count_backtracks(20.0, 42);
        assert!(
            low_p > high_p * 2,
            "p=0.05 should backtrack far more than p=20 (got {low_p} vs {high_p})"
        );
    }

    #[test]
    #[should_panic(expected = "p and q must be positive")]
    fn rejects_non_positive_p() {
        let g = grid_network(&GridConfig::small_test(), 1);
        let cfg = WalkConfig {
            p: 0.0,
            ..Default::default()
        };
        let _ = generate_walks(&g, &cfg, 1);
    }
}
