//! End-to-end node2vec driver: walks → SGNS → embedding matrix.

use pathrank_nn::matrix::Matrix;
use pathrank_spatial::graph::Graph;

use crate::skipgram::{train_skipgram, SkipGramConfig};
use crate::walks::{generate_walks, WalkConfig};

/// All node2vec hyper-parameters in one place.
#[derive(Debug, Clone)]
pub struct Node2VecConfig {
    /// Embedding dimensionality `M` (the paper sweeps 64 and 128).
    pub dim: usize,
    /// Walks started per vertex.
    pub walks_per_vertex: usize,
    /// Length of each walk.
    pub walk_length: usize,
    /// Return parameter `p`.
    pub p: f64,
    /// In-out parameter `q` (< 1 explores outward, suiting path tasks).
    pub q: f64,
    /// Skip-gram window.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// SGNS learning rate.
    pub lr: f32,
    /// SGNS epochs over the walk corpus.
    pub epochs: usize,
}

impl Default for Node2VecConfig {
    fn default() -> Self {
        Node2VecConfig {
            dim: 64,
            walks_per_vertex: 10,
            walk_length: 40,
            p: 1.0,
            q: 0.5,
            window: 5,
            negative: 5,
            lr: 0.025,
            epochs: 3,
        }
    }
}

/// Trains node2vec on `g` and returns the `vertex_count × dim` embedding.
pub fn train_node2vec(g: &Graph, cfg: &Node2VecConfig, seed: u64) -> Matrix {
    let walk_cfg = WalkConfig {
        walks_per_vertex: cfg.walks_per_vertex,
        walk_length: cfg.walk_length,
        p: cfg.p,
        q: cfg.q,
    };
    let walks = generate_walks(g, &walk_cfg, seed);
    let sg_cfg = SkipGramConfig {
        dim: cfg.dim,
        window: cfg.window,
        negative: cfg.negative,
        lr: cfg.lr,
        epochs: cfg.epochs,
    };
    train_skipgram(
        &walks,
        g.vertex_count(),
        &sg_cfg,
        seed.wrapping_add(0x9E3779B97F4A7C15),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skipgram::cosine;
    use pathrank_spatial::algo::dijkstra::shortest_path_tree;
    use pathrank_spatial::generators::{grid_network, GridConfig};
    use pathrank_spatial::graph::{CostModel, VertexId};

    #[test]
    fn shape_and_determinism() {
        let g = grid_network(&GridConfig::small_test(), 2);
        let cfg = Node2VecConfig {
            dim: 16,
            walks_per_vertex: 2,
            walk_length: 10,
            ..Default::default()
        };
        let a = train_node2vec(&g, &cfg, 3);
        let b = train_node2vec(&g, &cfg, 3);
        assert_eq!(a.shape(), (25, 16));
        assert_eq!(a, b);
        assert!(a.is_finite());
    }

    /// Topological sanity: embedding similarity should correlate with
    /// network distance — nearby vertices must look more alike than far
    /// ones, on average.
    #[test]
    fn similarity_tracks_network_distance() {
        let g = grid_network(
            &GridConfig {
                nx: 8,
                ny: 8,
                ..GridConfig::small_test()
            },
            4,
        );
        let cfg = Node2VecConfig {
            dim: 32,
            walks_per_vertex: 10,
            walk_length: 20,
            ..Default::default()
        };
        let emb = train_node2vec(&g, &cfg, 4);

        let tree = shortest_path_tree(&g, VertexId(0), CostModel::Length);
        let mut near = Vec::new();
        let mut far = Vec::new();
        let dists: Vec<f64> = (0..g.vertex_count()).map(|v| tree.dist[v]).collect();
        let max_d = dists.iter().cloned().fold(0.0, f64::max);
        for (v, &d) in dists.iter().enumerate().skip(1) {
            let c = cosine(&emb, 0, v);
            if d < max_d * 0.25 {
                near.push(c);
            } else if d > max_d * 0.75 {
                far.push(c);
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
        assert!(
            mean(&near) > mean(&far),
            "nearby vertices ({:.3}) must embed more similarly than distant ones ({:.3})",
            mean(&near),
            mean(&far)
        );
    }
}
