//! node2vec from scratch (Grover & Leskovec, KDD 2016).
//!
//! PathRank embeds every road-network vertex into `R^M` with node2vec and
//! uses the result to initialise its vertex-embedding layer. This crate
//! implements the full method:
//!
//! * [`alias`] — Walker's alias method for O(1) sampling from discrete
//!   distributions (used for negative sampling);
//! * [`walks`] — second-order biased random walks controlled by the
//!   return parameter `p` and in-out parameter `q`;
//! * [`skipgram`] — skip-gram with negative sampling (SGNS) trained by
//!   plain SGD over the generated walks;
//! * [`node2vec`] — the end-to-end driver.
//!
//! ```
//! use pathrank_embed::node2vec::{train_node2vec, Node2VecConfig};
//! use pathrank_spatial::generators::{grid_network, GridConfig};
//!
//! let g = grid_network(&GridConfig::small_test(), 1);
//! let cfg = Node2VecConfig { dim: 16, walks_per_vertex: 2, walk_length: 10, ..Default::default() };
//! let emb = train_node2vec(&g, &cfg, 7);
//! assert_eq!(emb.shape(), (g.vertex_count(), 16));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alias;
pub mod node2vec;
pub mod skipgram;
pub mod walks;

pub use node2vec::{train_node2vec, Node2VecConfig};
