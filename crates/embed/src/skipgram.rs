//! Skip-gram with negative sampling (SGNS), trained by SGD over walks.
//!
//! Follows word2vec: for every (center, context) pair within a window, pull
//! the center's *input* vector towards the context's *output* vector while
//! pushing it away from `negative` sampled vertices. Negative samples are
//! drawn from the unigram distribution raised to the 3/4 power.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pathrank_nn::matrix::Matrix;

use crate::alias::AliasTable;

/// SGNS hyper-parameters.
#[derive(Debug, Clone)]
pub struct SkipGramConfig {
    /// Embedding dimensionality `M`.
    pub dim: usize,
    /// Symmetric window size around each centre token.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Initial learning rate (linearly decayed to 10% over training).
    pub lr: f32,
    /// Passes over the walk corpus.
    pub epochs: usize,
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        SkipGramConfig {
            dim: 64,
            window: 5,
            negative: 5,
            lr: 0.025,
            epochs: 2,
        }
    }
}

/// Trains SGNS embeddings over `walks` for a vocabulary of `vocab` ids.
/// Returns the input-embedding matrix (`vocab × dim`).
pub fn train_skipgram(walks: &[Vec<u32>], vocab: usize, cfg: &SkipGramConfig, seed: u64) -> Matrix {
    assert!(vocab > 0, "empty vocabulary");
    let mut rng = StdRng::seed_from_u64(seed);

    // Input and output embeddings, uniformly initialised as in word2vec.
    let bound = 0.5 / cfg.dim as f32;
    let mut w_in: Vec<f32> = (0..vocab * cfg.dim)
        .map(|_| rng.gen_range(-bound..bound))
        .collect();
    let mut w_out: Vec<f32> = vec![0.0; vocab * cfg.dim];

    // Unigram^(3/4) negative-sampling distribution.
    let mut counts = vec![0f64; vocab];
    for walk in walks {
        for &v in walk {
            counts[v as usize] += 1.0;
        }
    }
    let any_token = counts.iter().any(|&c| c > 0.0);
    if !any_token {
        return Matrix::from_vec(vocab, cfg.dim, w_in);
    }
    let noise = AliasTable::new(&counts.iter().map(|c| c.powf(0.75)).collect::<Vec<_>>());

    let total_pairs_estimate: usize =
        walks.iter().map(|w| w.len()).sum::<usize>().max(1) * cfg.epochs;
    let mut processed = 0usize;
    let mut grad = vec![0.0f32; cfg.dim];

    for _ in 0..cfg.epochs {
        for walk in walks {
            for (i, &center) in walk.iter().enumerate() {
                processed += 1;
                let progress = processed as f32 / total_pairs_estimate as f32;
                let lr = cfg.lr * (1.0 - 0.9 * progress.min(1.0));
                let lo = i.saturating_sub(cfg.window);
                let hi = (i + cfg.window + 1).min(walk.len());
                for (j, &context) in walk.iter().enumerate().take(hi).skip(lo) {
                    if i == j {
                        continue;
                    }
                    // One positive update + `negative` negative updates on
                    // the centre's input vector.
                    let c0 = center as usize * cfg.dim;
                    grad.iter_mut().for_each(|g| *g = 0.0);
                    let update = |target: usize,
                                  label: f32,
                                  w_in: &[f32],
                                  w_out: &mut [f32],
                                  grad: &mut [f32]| {
                        let t0 = target * cfg.dim;
                        let mut dot = 0.0f32;
                        for d in 0..cfg.dim {
                            dot += w_in[c0 + d] * w_out[t0 + d];
                        }
                        let pred = 1.0 / (1.0 + (-dot).exp());
                        let err = (label - pred) * lr;
                        for d in 0..cfg.dim {
                            grad[d] += err * w_out[t0 + d];
                            w_out[t0 + d] += err * w_in[c0 + d];
                        }
                    };
                    update(context as usize, 1.0, &w_in, &mut w_out, &mut grad);
                    for _ in 0..cfg.negative {
                        let neg = noise.sample(&mut rng);
                        if neg == context {
                            continue;
                        }
                        update(neg as usize, 0.0, &w_in, &mut w_out, &mut grad);
                    }
                    for d in 0..cfg.dim {
                        w_in[c0 + d] += grad[d];
                    }
                }
            }
        }
    }
    Matrix::from_vec(vocab, cfg.dim, w_in)
}

/// Cosine similarity between two embedding rows; used by tests and by the
/// quality checks in the node2vec driver.
pub fn cosine(emb: &Matrix, a: usize, b: usize) -> f32 {
    let (ra, rb) = (emb.row(a), emb.row(b));
    let dot: f32 = ra.iter().zip(rb).map(|(x, y)| x * y).sum();
    let na: f32 = ra.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = rb.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disjoint cliques of tokens: co-occurring tokens must embed more
    /// similarly than tokens from different cliques.
    #[test]
    fn separates_two_communities() {
        let mut walks = Vec::new();
        // Community A: tokens 0..4; community B: tokens 5..9.
        for rep in 0..200u32 {
            let a: Vec<u32> = (0..5).map(|i| (rep + i) % 5).collect();
            let b: Vec<u32> = (0..5).map(|i| 5 + (rep + i) % 5).collect();
            walks.push(a);
            walks.push(b);
        }
        let cfg = SkipGramConfig {
            dim: 16,
            window: 3,
            negative: 4,
            lr: 0.05,
            epochs: 3,
        };
        let emb = train_skipgram(&walks, 10, &cfg, 13);

        let mut within = 0.0f32;
        let mut across = 0.0f32;
        let mut wn = 0;
        let mut an = 0;
        for i in 0..5 {
            for j in 0..5 {
                if i != j {
                    within += cosine(&emb, i, j) + cosine(&emb, 5 + i, 5 + j);
                    wn += 2;
                }
                across += cosine(&emb, i, 5 + j);
                an += 1;
            }
        }
        let within = within / wn as f32;
        let across = across / an as f32;
        assert!(
            within > across + 0.2,
            "within-community cosine {within} must exceed across {across}"
        );
    }

    #[test]
    fn output_shape_and_determinism() {
        let walks = vec![vec![0, 1, 2, 1, 0], vec![2, 1, 0, 1, 2]];
        let cfg = SkipGramConfig {
            dim: 8,
            ..Default::default()
        };
        let a = train_skipgram(&walks, 3, &cfg, 4);
        let b = train_skipgram(&walks, 3, &cfg, 4);
        assert_eq!(a.shape(), (3, 8));
        assert_eq!(a, b);
        let c = train_skipgram(&walks, 3, &cfg, 5);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_walks_return_initialisation() {
        let cfg = SkipGramConfig {
            dim: 4,
            ..Default::default()
        };
        let emb = train_skipgram(&[], 5, &cfg, 1);
        assert_eq!(emb.shape(), (5, 4));
        assert!(emb.is_finite());
    }

    #[test]
    fn embeddings_stay_finite() {
        let walks: Vec<Vec<u32>> = (0..50)
            .map(|i| vec![i % 7, (i + 1) % 7, (i + 2) % 7])
            .collect();
        let cfg = SkipGramConfig {
            dim: 12,
            lr: 0.5,
            ..Default::default()
        };
        let emb = train_skipgram(&walks, 7, &cfg, 2);
        assert!(
            emb.is_finite(),
            "even aggressive learning rates must not blow up"
        );
    }

    #[test]
    fn cosine_properties() {
        let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 0.0], &[0.0, 0.0]]);
        assert!((cosine(&m, 0, 2) - 1.0).abs() < 1e-6);
        assert!(cosine(&m, 0, 1).abs() < 1e-6);
        assert_eq!(cosine(&m, 0, 3), 0.0);
    }
}
