//! Walker's alias method: O(n) construction, O(1) sampling from an
//! arbitrary discrete distribution.

use rand::rngs::StdRng;
use rand::Rng;

/// An alias table over `0..n` built from unnormalised weights.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from unnormalised non-negative weights.
    ///
    /// # Panics
    /// If `weights` is empty, contains a negative/non-finite value, or sums
    /// to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "alias table needs at least one outcome"
        );
        let total: f64 = weights
            .iter()
            .inspect(|&&w| assert!(w.is_finite() && w >= 0.0, "bad weight {w}"))
            .sum();
        assert!(total > 0.0, "weights must not all be zero");

        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Anything left is 1 up to floating-point error.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Always false: the constructor rejects empty weights.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one outcome.
    #[inline]
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0, 1.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            let freq = c as f64 / 40_000.0;
            assert!((freq - 0.25).abs() < 0.02, "freq {freq}");
        }
    }

    #[test]
    fn skewed_weights_match_expectation() {
        let t = AliasTable::new(&[1.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut ones = 0usize;
        for _ in 0..40_000 {
            if t.sample(&mut rng) == 1 {
                ones += 1;
            }
        }
        let freq = ones as f64 / 40_000.0;
        assert!((freq - 0.75).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn zero_weight_outcome_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            assert_eq!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[7.0]);
        assert_eq!(t.len(), 1);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(t.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn rejects_empty() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn rejects_all_zero() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }
}
