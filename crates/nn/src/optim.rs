//! First-order optimisers: SGD (with momentum) and Adam.
//!
//! Optimisers mutate a [`ParamStore`] given a [`GradStore`]. They keep
//! per-parameter state lazily so parameters that never receive gradients
//! (e.g. a frozen embedding) cost nothing.

use crate::matrix::Matrix;
use crate::params::{GradStore, ParamStore};

/// A first-order optimiser.
pub trait Optimizer {
    /// Applies one update step from accumulated gradients.
    fn step(&mut self, store: &mut ParamStore, grads: &GradStore);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Matrix>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum `mu` (velocity `v ← mu·v + g`, `θ ← θ − lr·v`).
    pub fn with_momentum(lr: f32, mu: f32) -> Self {
        Sgd {
            lr,
            momentum: mu,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &GradStore) {
        if self.velocity.len() < store.len() {
            self.velocity.resize(store.len(), None);
        }
        for (id, g) in grads.iter() {
            if self.momentum == 0.0 {
                store.value_mut(id).add_scaled_assign(g, -self.lr);
            } else {
                let v =
                    self.velocity[id.0].get_or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
                for (vv, &gv) in v.data_mut().iter_mut().zip(g.data().iter()) {
                    *vv = self.momentum * *vv + gv;
                }
                store.value_mut(id).add_scaled_assign(v, -self.lr);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) with optional decoupled weight decay.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
}

impl Adam {
    /// Adam with the canonical hyper-parameters (β₁ = 0.9, β₂ = 0.999,
    /// ε = 1e-8, no weight decay).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Sets decoupled weight decay (AdamW style).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, grads: &GradStore) {
        if self.m.len() < store.len() {
            self.m.resize(store.len(), None);
            self.v.resize(store.len(), None);
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, g) in grads.iter() {
            let m = self.m[id.0].get_or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            let v = self.v[id.0].get_or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            let theta = store.value_mut(id);
            for i in 0..g.data().len() {
                let gv = g.data()[i];
                let mv = &mut m.data_mut()[i];
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                let vv = &mut v.data_mut()[i];
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                let m_hat = *mv / bc1;
                let v_hat = *vv / bc2;
                let p = &mut theta.data_mut()[i];
                *p -= self.lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * *p);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;
    use crate::tape::Tape;

    /// Minimises (w·x − y)² on a fixed batch; any reasonable optimiser must
    /// drive the loss near zero.
    fn fit(mut opt: impl Optimizer, iters: usize) -> f32 {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 1, vec![0.0]));
        let (x, y) = (3.0f32, 6.0f32); // optimum w = 2
        let mut last = f32::INFINITY;
        for _ in 0..iters {
            let mut tape = Tape::new(&store);
            let wv = tape.param(w);
            let xv = tape.input(Matrix::from_vec(1, 1, vec![x]));
            let pred = tape.mul(wv, xv);
            let loss = tape.mse_scalar(pred, y);
            last = tape.scalar(loss);
            let mut grads = GradStore::new(&store);
            tape.backward(loss, &mut grads);
            opt.step(&mut store, &grads);
        }
        last
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(fit(Sgd::new(0.05), 100) < 1e-4);
    }

    #[test]
    fn sgd_momentum_converges() {
        assert!(fit(Sgd::with_momentum(0.02, 0.9), 150) < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(fit(Adam::new(0.2), 200) < 1e-3);
    }

    #[test]
    fn adam_bias_correction_first_step() {
        // After one step with gradient g, Adam moves by ~lr * sign(g).
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 1, vec![1.0]));
        let mut grads = GradStore::new(&store);
        grads.accumulate(w, &Matrix::from_vec(1, 1, vec![0.5]));
        let mut adam = Adam::new(0.1);
        adam.step(&mut store, &grads);
        let moved = 1.0 - store.value(w).at(0, 0);
        assert!(
            (moved - 0.1).abs() < 1e-3,
            "first Adam step ≈ lr, got {moved}"
        );
        assert_eq!(adam.steps(), 1);
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient_signal() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 1, vec![1.0]));
        let mut grads = GradStore::new(&store);
        grads.accumulate(w, &Matrix::from_vec(1, 1, vec![0.0]));
        let mut adam = Adam::new(0.1).with_weight_decay(0.5);
        adam.step(&mut store, &grads);
        assert!(store.value(w).at(0, 0) < 1.0);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut o = Sgd::new(0.1);
        assert_eq!(o.learning_rate(), 0.1);
        o.set_learning_rate(0.01);
        assert_eq!(o.learning_rate(), 0.01);
        let mut a = Adam::new(0.3);
        a.set_learning_rate(0.2);
        assert_eq!(a.learning_rate(), 0.2);
    }

    #[test]
    fn untouched_params_are_not_updated() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 1, vec![1.0]));
        let frozen = store.add("frozen", Matrix::from_vec(1, 1, vec![42.0]));
        let mut grads = GradStore::new(&store);
        grads.accumulate(w, &Matrix::from_vec(1, 1, vec![1.0]));
        let mut adam = Adam::new(0.1);
        adam.step(&mut store, &grads);
        assert_eq!(store.value(frozen).at(0, 0), 42.0);
        assert_ne!(store.value(w).at(0, 0), 1.0);
    }
}
