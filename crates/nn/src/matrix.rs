//! Row-major `f32` matrices with the operations the models need.
//!
//! Deliberately minimal: PathRank's tensors are at most a few hundred
//! entries wide, so a simple cache-friendly `i-k-j` matmul is plenty. The
//! matmul inner loop is written over slices so LLVM can autovectorise it.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "shape mismatch: {rows}x{cols} vs {}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices (all the same length).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// The flat row-major data, mutably.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    /// If `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop: the inner j-loop runs over contiguous slices of both
        // `rhs` and `out`, which LLVM autovectorises.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · rhsᵀ` without materialising the transpose.
    pub fn matmul_transpose_rhs(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t shape mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0f32;
                for (x, y) in a_row.iter().zip(b_row.iter()) {
                    acc += x * y;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// `selfᵀ · rhs` without materialising the transpose.
    pub fn transpose_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul shape mismatch: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = rhs.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise `self + rhs` (equal shapes).
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a + b)
    }

    /// Elementwise `self - rhs` (equal shapes).
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product (equal shapes).
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a * b)
    }

    /// Elementwise combination of two equal-shape matrices.
    pub fn zip(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "elementwise shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|a| a * s)
    }

    /// In-place `self += rhs` (equal shapes).
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// In-place `self += s * rhs` (equal shapes) — the optimiser kernel.
    pub fn add_scaled_assign(&mut self, rhs: &Matrix, s: f32) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += s * b;
        }
    }

    /// Adds a `1 × cols` row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "broadcast rhs must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let dst = &mut out.data[r * out.cols..(r + 1) * out.cols];
            for (d, &b) in dst.iter_mut().zip(row.data.iter()) {
                *d += b;
            }
        }
        out
    }

    /// Sums rows into a `1 × cols` vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Mean of all rows as a `1 × cols` vector.
    pub fn mean_rows(&self) -> Matrix {
        self.sum_rows().scale(1.0 / self.rows.max(1) as f32)
    }

    /// Sum of squares of all entries.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// Whether all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2x3() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    fn m3x2() -> Matrix {
        Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]])
    }

    #[test]
    fn construction_and_access() {
        let m = m2x3();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.at(0, 0), 1.0);
        assert_eq!(m.at(1, 2), 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        let z = Matrix::zeros(2, 2);
        assert!(z.data().iter().all(|&v| v == 0.0));
        assert_eq!(Matrix::full(1, 3, 2.5).data(), &[2.5, 2.5, 2.5]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_vec_shape_check() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_product() {
        let p = m2x3().matmul(&m3x2());
        // [1 2 3; 4 5 6] · [7 8; 9 10; 11 12] = [58 64; 139 154]
        assert_eq!(p, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn matmul_identity() {
        let m = m2x3();
        let mut id = Matrix::zeros(3, 3);
        for i in 0..3 {
            *id.at_mut(i, i) = 1.0;
        }
        assert_eq!(m.matmul(&id), m);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_check() {
        let _ = m2x3().matmul(&m2x3());
    }

    #[test]
    fn transpose_variants_agree() {
        let a = m2x3();
        let b = m3x2();
        // a · b == a · (bᵀ)ᵀ == matmul_transpose_rhs(a, bᵀ)
        let bt = b.transpose();
        assert_eq!(a.matmul(&b), a.matmul_transpose_rhs(&bt));
        // aᵀ · a == transpose_matmul(a, a)
        assert_eq!(a.transpose().matmul(&a), a.transpose_matmul(&a));
    }

    #[test]
    fn transpose_involution() {
        let m = m2x3();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[6.0, 8.0], &[10.0, 12.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[4.0, 4.0], &[4.0, 4.0]]));
        assert_eq!(a.mul(&b), Matrix::from_rows(&[&[5.0, 12.0], &[21.0, 32.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0], &[6.0, 8.0]]));
        assert_eq!(
            a.map(|v| v - 1.0),
            Matrix::from_rows(&[&[0.0, 1.0], &[2.0, 3.0]])
        );
    }

    #[test]
    fn in_place_ops() {
        let mut a = Matrix::from_rows(&[&[1.0, 1.0]]);
        a.add_assign(&Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(a, Matrix::from_rows(&[&[3.0, 4.0]]));
        a.add_scaled_assign(&Matrix::from_rows(&[&[1.0, 1.0]]), -2.0);
        assert_eq!(a, Matrix::from_rows(&[&[1.0, 2.0]]));
    }

    #[test]
    fn broadcast_and_reductions() {
        let a = m2x3();
        let bias = Matrix::from_rows(&[&[10.0, 20.0, 30.0]]);
        let s = a.add_row_broadcast(&bias);
        assert_eq!(
            s,
            Matrix::from_rows(&[&[11.0, 22.0, 33.0], &[14.0, 25.0, 36.0]])
        );
        assert_eq!(a.sum_rows(), Matrix::from_rows(&[&[5.0, 7.0, 9.0]]));
        assert_eq!(a.mean_rows(), Matrix::from_rows(&[&[2.5, 3.5, 4.5]]));
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.sq_norm(), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert!(a.is_finite());
        let mut b = a.clone();
        *b.at_mut(0, 0) = f32::NAN;
        assert!(!b.is_finite());
    }
}
