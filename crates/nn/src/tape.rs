//! Reverse-mode automatic differentiation on a per-sample tape.
//!
//! A [`Tape`] records a computation graph over [`Matrix`] values. Leaves are
//! either constants ([`Tape::input`]), parameters ([`Tape::param`], read
//! from a shared [`ParamStore`] without copying) or sparse embedding lookups
//! ([`Tape::embed`]). Calling [`Tape::backward`] walks the graph once in
//! reverse and deposits parameter gradients into a [`GradStore`].
//!
//! The tape borrows the parameter store immutably, so any number of tapes
//! can run concurrently against the same store — PathRank's trainer
//! exploits this for parallel mini-batch gradient computation.

use crate::matrix::Matrix;
use crate::params::{GradStore, ParamId, ParamStore};

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug)]
enum Op {
    /// Constant leaf: no gradient flows into it.
    Input,
    /// Parameter leaf: value lives in the [`ParamStore`].
    Param(ParamId),
    /// Sparse row gather from an embedding parameter.
    Embed {
        param: ParamId,
        indices: Vec<u32>,
    },
    MatMul(Var, Var),
    Add(Var, Var),
    AddRowBroadcast(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    Row(Var, usize),
    MeanRows(Var),
    /// `(a₀₀ - target)²` for a `1×1` input — the regression loss.
    MseScalar(Var, f32),
}

#[derive(Debug)]
struct Node {
    op: Op,
    /// `None` only for `Param` nodes, whose value lives in the store.
    value: Option<Matrix>,
}

/// A computation tape. Build ops, then call [`Tape::backward`] once.
#[derive(Debug)]
pub struct Tape<'s> {
    store: &'s ParamStore,
    nodes: Vec<Node>,
}

impl<'s> Tape<'s> {
    /// A fresh tape over `store`.
    pub fn new(store: &'s ParamStore) -> Self {
        Tape {
            store,
            nodes: Vec::with_capacity(64),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of `v`.
    #[inline]
    pub fn value(&self, v: Var) -> &Matrix {
        let node = &self.nodes[v.0];
        match &node.op {
            Op::Param(p) => self.store.value(*p),
            _ => node
                .value
                .as_ref()
                .expect("non-param nodes own their value"),
        }
    }

    /// Value of a `1×1` node as a scalar.
    pub fn scalar(&self, v: Var) -> f32 {
        let m = self.value(v);
        assert_eq!(m.shape(), (1, 1), "scalar() needs a 1x1 node");
        m.at(0, 0)
    }

    fn push(&mut self, op: Op, value: Option<Matrix>) -> Var {
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// A constant leaf (inputs, frozen embeddings).
    pub fn input(&mut self, value: Matrix) -> Var {
        self.push(Op::Input, Some(value))
    }

    /// A parameter leaf; the value is read from the store, not copied.
    pub fn param(&mut self, id: ParamId) -> Var {
        self.push(Op::Param(id), None)
    }

    /// Gathers rows `indices` of embedding parameter `id` into an
    /// `indices.len() × dim` matrix. Gradients scatter back sparsely.
    pub fn embed(&mut self, id: ParamId, indices: &[u32]) -> Var {
        let table = self.store.value(id);
        let mut out = Matrix::zeros(indices.len(), table.cols());
        for (i, &ix) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(table.row(ix as usize));
        }
        self.push(
            Op::Embed {
                param: id,
                indices: indices.to_vec(),
            },
            Some(out),
        )
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), Some(v))
    }

    /// Elementwise sum (equal shapes).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(Op::Add(a, b), Some(v))
    }

    /// Adds row vector `bias` (`1×c`) to every row of `a` (`n×c`).
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let v = self.value(a).add_row_broadcast(self.value(bias));
        self.push(Op::AddRowBroadcast(a, bias), Some(v))
    }

    /// Elementwise difference (equal shapes).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push(Op::Sub(a, b), Some(v))
    }

    /// Elementwise (Hadamard) product (equal shapes).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        self.push(Op::Mul(a, b), Some(v))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).scale(s);
        self.push(Op::Scale(a, s), Some(v))
    }

    /// `1 - a` elementwise (the GRU's update-gate complement), built from
    /// `scale` and a constant so it needs no dedicated op.
    pub fn one_minus(&mut self, a: Var) -> Var {
        let ones = Matrix::full(self.value(a).rows(), self.value(a).cols(), 1.0);
        let ones = self.input(ones);
        self.sub(ones, a)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a), Some(v))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        self.push(Op::Tanh(a), Some(v))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(Op::Relu(a), Some(v))
    }

    /// Selects row `r` of `a` as a `1×c` matrix.
    pub fn row(&mut self, a: Var, r: usize) -> Var {
        let src = self.value(a);
        let v = Matrix::from_vec(1, src.cols(), src.row(r).to_vec());
        self.push(Op::Row(a, r), Some(v))
    }

    /// Mean over rows as a `1×c` matrix (mean-pool encoder).
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).mean_rows();
        self.push(Op::MeanRows(a), Some(v))
    }

    /// Squared error `(a₀₀ - target)²` of a `1×1` prediction.
    pub fn mse_scalar(&mut self, a: Var, target: f32) -> Var {
        let p = self.scalar(a);
        let v = Matrix::from_vec(1, 1, vec![(p - target) * (p - target)]);
        self.push(Op::MseScalar(a, target), Some(v))
    }

    /// Runs reverse-mode differentiation from `loss` (a `1×1` node),
    /// accumulating parameter gradients into `grads`.
    pub fn backward(&self, loss: Var, grads: &mut GradStore) {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be scalar");
        let mut adj: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        adj[loss.0] = Some(Matrix::from_vec(1, 1, vec![1.0]));

        for i in (0..self.nodes.len()).rev() {
            let Some(g) = adj[i].take() else { continue };
            match &self.nodes[i].op {
                Op::Input => {}
                Op::Param(p) => grads.accumulate(*p, &g),
                Op::Embed { param, indices } => grads.accumulate_rows(*param, indices, &g),
                Op::MatMul(a, b) => {
                    let da = g.matmul_transpose_rhs(self.value(*b));
                    let db = self.value(*a).transpose_matmul(&g);
                    acc(&mut adj, a.0, da);
                    acc(&mut adj, b.0, db);
                }
                Op::Add(a, b) => {
                    acc(&mut adj, a.0, g.clone());
                    acc(&mut adj, b.0, g);
                }
                Op::AddRowBroadcast(a, bias) => {
                    acc(&mut adj, bias.0, g.sum_rows());
                    acc(&mut adj, a.0, g);
                }
                Op::Sub(a, b) => {
                    acc(&mut adj, b.0, g.scale(-1.0));
                    acc(&mut adj, a.0, g);
                }
                Op::Mul(a, b) => {
                    let da = g.mul(self.value(*b));
                    let db = g.mul(self.value(*a));
                    acc(&mut adj, a.0, da);
                    acc(&mut adj, b.0, db);
                }
                Op::Scale(a, s) => acc(&mut adj, a.0, g.scale(*s)),
                Op::Sigmoid(a) => {
                    let y = self.nodes[i].value.as_ref().expect("sigmoid owns value");
                    acc(&mut adj, a.0, g.zip(y, |gv, yv| gv * yv * (1.0 - yv)));
                }
                Op::Tanh(a) => {
                    let y = self.nodes[i].value.as_ref().expect("tanh owns value");
                    acc(&mut adj, a.0, g.zip(y, |gv, yv| gv * (1.0 - yv * yv)));
                }
                Op::Relu(a) => {
                    let y = self.nodes[i].value.as_ref().expect("relu owns value");
                    acc(
                        &mut adj,
                        a.0,
                        g.zip(y, |gv, yv| if yv > 0.0 { gv } else { 0.0 }),
                    );
                }
                Op::Row(a, r) => {
                    let (rows, cols) = self.value(*a).shape();
                    let mut da = Matrix::zeros(rows, cols);
                    da.row_mut(*r).copy_from_slice(g.row(0));
                    acc(&mut adj, a.0, da);
                }
                Op::MeanRows(a) => {
                    let (rows, cols) = self.value(*a).shape();
                    let mut da = Matrix::zeros(rows, cols);
                    let inv = 1.0 / rows.max(1) as f32;
                    for r in 0..rows {
                        for (d, &gv) in da.row_mut(r).iter_mut().zip(g.row(0).iter()) {
                            *d = gv * inv;
                        }
                    }
                    acc(&mut adj, a.0, da);
                }
                Op::MseScalar(a, target) => {
                    let p = self.value(*a).at(0, 0);
                    let da = Matrix::from_vec(1, 1, vec![g.at(0, 0) * 2.0 * (p - target)]);
                    acc(&mut adj, a.0, da);
                }
            }
        }
    }
}

#[inline]
fn acc(adj: &mut [Option<Matrix>], idx: usize, delta: Matrix) {
    match &mut adj[idx] {
        Some(g) => g.add_assign(&delta),
        slot => *slot = Some(delta),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values() {
        let store = ParamStore::new();
        let mut t = Tape::new(&store);
        let a = t.input(Matrix::from_rows(&[&[1.0, -2.0]]));
        let r = t.relu(a);
        assert_eq!(t.value(r).data(), &[1.0, 0.0]);
        let s = t.sigmoid(a);
        assert!((t.value(s).at(0, 0) - 0.7310586).abs() < 1e-5);
        let th = t.tanh(a);
        assert!((t.value(th).at(0, 0) - 0.7615942).abs() < 1e-5);
        let om = t.one_minus(a);
        assert_eq!(t.value(om).data(), &[0.0, 3.0]);
        let sc = t.scale(a, -1.5);
        assert_eq!(t.value(sc).data(), &[-1.5, 3.0]);
    }

    #[test]
    fn embed_gathers_rows() {
        let mut store = ParamStore::new();
        let e = store.add(
            "emb",
            Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 10.0], &[2.0, 20.0]]),
        );
        let mut t = Tape::new(&store);
        let x = t.embed(e, &[2, 0, 2]);
        assert_eq!(
            t.value(x),
            &Matrix::from_rows(&[&[2.0, 20.0], &[0.0, 0.0], &[2.0, 20.0]])
        );
    }

    #[test]
    fn backward_through_shared_node() {
        // y = (w + w) * x  =>  dy/dw = 2x; checks gradient accumulation on
        // a node consumed twice.
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 1, vec![3.0]));
        let mut t = Tape::new(&store);
        let wv = t.param(w);
        let x = t.input(Matrix::from_vec(1, 1, vec![5.0]));
        let two_w = t.add(wv, wv);
        let y = t.mul(two_w, x);
        let loss = t.mse_scalar(y, 0.0); // (2*3*5)^2 = 900
        assert!((t.scalar(loss) - 900.0).abs() < 1e-3);
        let mut grads = GradStore::new(&store);
        t.backward(loss, &mut grads);
        // dL/dw = 2*(30-0) * d(30)/dw = 60 * 2*5 = 600.
        assert!((grads.get(w).unwrap().at(0, 0) - 600.0).abs() < 1e-3);
    }

    #[test]
    fn backward_row_and_mean() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let mut t = Tape::new(&store);
        let wv = t.param(w);
        let r = t.row(wv, 1); // [3, 4]
        let m = t.mean_rows(wv); // [2, 3]
        let s = t.add(r, m); // [5, 7]
        let ones = t.input(Matrix::from_rows(&[&[1.0], &[1.0]]));
        let y = t.matmul(s, ones); // 12
        let loss = t.mse_scalar(y, 0.0);
        let mut grads = GradStore::new(&store);
        t.backward(loss, &mut grads);
        // dL/dy = 2*12 = 24; row grad hits row 1 with [24,24];
        // mean grad spreads [12,12] to both rows.
        let g = grads.get(w).unwrap();
        assert_eq!(g.row(0), &[12.0, 12.0]);
        assert_eq!(g.row(1), &[36.0, 36.0]);
    }

    /// Finite-difference gradient check over a composite expression using
    /// every differentiable op.
    #[test]
    fn finite_difference_check_all_ops() {
        let build =
            |store: &ParamStore, w1: ParamId, w2: ParamId, b: ParamId, emb: ParamId| -> f32 {
                let mut t = Tape::new(store);
                let x = t.embed(emb, &[1, 0, 2]); // 3×2
                let w1v = t.param(w1); // 2×3
                let h = t.matmul(x, w1v); // 3×3
                let bv = t.param(b); // 1×3
                let h = t.add_bias(h, bv);
                let h = t.tanh(h);
                let g = t.sigmoid(h);
                let hg = t.mul(h, g);
                let r = t.relu(hg);
                let omr = t.one_minus(r);
                let mix = t.sub(hg, omr);
                let mix = t.scale(mix, 0.7);
                let pooled = t.mean_rows(mix); // 1×3
                let top = t.row(mix, 0); // 1×3
                let sum = t.add(pooled, top);
                let w2v = t.param(w2); // 3×1
                let y = t.matmul(sum, w2v); // 1×1
                let loss = t.mse_scalar(y, 0.5);
                t.scalar(loss)
            };

        let mut store = ParamStore::new();
        let w1 = store.add(
            "w1",
            Matrix::from_vec(2, 3, vec![0.3, -0.2, 0.5, 0.1, 0.4, -0.6]),
        );
        let w2 = store.add("w2", Matrix::from_vec(3, 1, vec![0.7, -0.3, 0.2]));
        let b = store.add("b", Matrix::from_vec(1, 3, vec![0.05, -0.02, 0.1]));
        let emb = store.add(
            "emb",
            Matrix::from_vec(3, 2, vec![0.2, -0.1, 0.4, 0.3, -0.5, 0.6]),
        );

        // Analytic gradients.
        let mut grads = GradStore::new(&store);
        {
            let mut t = Tape::new(&store);
            let x = t.embed(emb, &[1, 0, 2]);
            let w1v = t.param(w1);
            let h = t.matmul(x, w1v);
            let bv = t.param(b);
            let h = t.add_bias(h, bv);
            let h = t.tanh(h);
            let g = t.sigmoid(h);
            let hg = t.mul(h, g);
            let r = t.relu(hg);
            let omr = t.one_minus(r);
            let mix = t.sub(hg, omr);
            let mix = t.scale(mix, 0.7);
            let pooled = t.mean_rows(mix);
            let top = t.row(mix, 0);
            let sum = t.add(pooled, top);
            let w2v = t.param(w2);
            let y = t.matmul(sum, w2v);
            let loss = t.mse_scalar(y, 0.5);
            t.backward(loss, &mut grads);
        }

        // Numeric gradients.
        let eps = 1e-3f32;
        for (pid, _, _) in store.clone().iter() {
            let (rows, cols) = store.value(pid).shape();
            for r in 0..rows {
                for c in 0..cols {
                    let orig = store.value(pid).at(r, c);
                    *store.value_mut(pid).at_mut(r, c) = orig + eps;
                    let up = build(&store, w1, w2, b, emb);
                    *store.value_mut(pid).at_mut(r, c) = orig - eps;
                    let down = build(&store, w1, w2, b, emb);
                    *store.value_mut(pid).at_mut(r, c) = orig;
                    let numeric = (up - down) / (2.0 * eps);
                    let analytic = grads.get(pid).map_or(0.0, |g| g.at(r, c));
                    assert!(
                        (numeric - analytic).abs()
                            < 2e-2 + 0.05 * numeric.abs().max(analytic.abs()),
                        "param {pid:?} ({r},{c}): numeric {numeric} vs analytic {analytic}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_rejects_non_scalar_loss() {
        let store = ParamStore::new();
        let mut t = Tape::new(&store);
        let a = t.input(Matrix::zeros(2, 2));
        let mut grads = GradStore::new(&store);
        t.backward(a, &mut grads);
    }
}
