//! Plain-text persistence for parameter stores.
//!
//! Trained models (PathRank included) are just a [`ParamStore`]; this
//! module writes and restores one in a stable, diff-friendly line format:
//!
//! ```text
//! pathrank-params v1
//! params 2
//! param embedding 3 2
//! 0.1 0.2
//! 0.3 0.4
//! 0.5 0.6
//! param head.w 2 1
//! 1.5
//! -0.5
//! ```
//!
//! Values are written with full `f32` round-trip precision.

use std::io::{BufRead, Write};

use crate::matrix::Matrix;
use crate::params::ParamStore;

const MAGIC: &str = "pathrank-params v1";

/// Serialisation errors.
#[derive(Debug)]
pub enum SerializeError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or numeric parse failure.
    Parse(String),
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::Io(e) => write!(f, "io error: {e}"),
            SerializeError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for SerializeError {}

impl From<std::io::Error> for SerializeError {
    fn from(e: std::io::Error) -> Self {
        SerializeError::Io(e)
    }
}

/// Writes `store` to `out` in the v1 text format.
pub fn write_params<W: Write>(store: &ParamStore, out: &mut W) -> Result<(), SerializeError> {
    writeln!(out, "{MAGIC}")?;
    writeln!(out, "params {}", store.len())?;
    for (_, name, value) in store.iter() {
        assert!(
            !name.contains(char::is_whitespace),
            "parameter names must not contain whitespace: {name:?}"
        );
        writeln!(out, "param {name} {} {}", value.rows(), value.cols())?;
        for r in 0..value.rows() {
            let row: Vec<String> = value.row(r).iter().map(|v| format!("{v}")).collect();
            writeln!(out, "{}", row.join(" "))?;
        }
    }
    Ok(())
}

/// Serialises `store` to a `String`.
pub fn params_to_string(store: &ParamStore) -> String {
    let mut buf = Vec::new();
    write_params(store, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("format is ASCII")
}

/// Reads a parameter store in the v1 text format. Parameter order (and
/// hence every `ParamId`) is preserved.
pub fn read_params<R: BufRead>(input: R) -> Result<ParamStore, SerializeError> {
    let mut lines = input.lines();
    let mut next = || -> Result<String, SerializeError> {
        loop {
            match lines.next() {
                Some(Ok(l)) => {
                    if !l.trim().is_empty() {
                        return Ok(l);
                    }
                }
                Some(Err(e)) => return Err(SerializeError::Io(e)),
                None => return Err(SerializeError::Parse("unexpected end of input".into())),
            }
        }
    };

    if next()?.trim() != MAGIC {
        return Err(SerializeError::Parse("bad header".into()));
    }
    let count_line = next()?;
    let count: usize = count_line
        .trim()
        .strip_prefix("params ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| SerializeError::Parse(format!("bad params line {count_line:?}")))?;

    let mut store = ParamStore::new();
    for _ in 0..count {
        let header = next()?;
        let mut it = header.split_ascii_whitespace();
        if it.next() != Some("param") {
            return Err(SerializeError::Parse(format!(
                "expected param line, got {header:?}"
            )));
        }
        let name = it
            .next()
            .ok_or_else(|| SerializeError::Parse("missing param name".into()))?
            .to_string();
        let rows: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SerializeError::Parse("missing rows".into()))?;
        let cols: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SerializeError::Parse("missing cols".into()))?;
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows {
            let line = next()?;
            for tok in line.split_ascii_whitespace() {
                let v: f32 = tok
                    .parse()
                    .map_err(|_| SerializeError::Parse(format!("bad value {tok:?}")))?;
                data.push(v);
            }
        }
        if data.len() != rows * cols {
            return Err(SerializeError::Parse(format!(
                "param {name}: expected {} values, got {}",
                rows * cols,
                data.len()
            )));
        }
        store.add(name, Matrix::from_vec(rows, cols, data));
    }
    Ok(store)
}

/// Parses a store from its v1 text representation.
pub fn params_from_str(s: &str) -> Result<ParamStore, SerializeError> {
    read_params(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ParamStore {
        let mut s = ParamStore::new();
        s.add(
            "embedding",
            Matrix::from_rows(&[&[0.1, -0.25], &[3.5e-8, 42.0]]),
        );
        s.add("head.w", Matrix::from_rows(&[&[1.0], &[-2.0], &[0.5]]));
        s.add("head.b", Matrix::zeros(1, 1));
        s
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let store = sample_store();
        let text = params_to_string(&store);
        let back = params_from_str(&text).unwrap();
        assert_eq!(back.len(), store.len());
        for ((_, n1, v1), (_, n2, v2)) in store.iter().zip(back.iter()) {
            assert_eq!(n1, n2);
            assert_eq!(v1, v2, "bit-exact f32 round trip for {n1}");
        }
    }

    #[test]
    fn roundtrip_extreme_values() {
        let mut s = ParamStore::new();
        s.add(
            "extremes",
            Matrix::from_rows(&[&[f32::MIN_POSITIVE, f32::MAX, -1.0e-38, 0.0]]),
        );
        let back = params_from_str(&params_to_string(&s)).unwrap();
        assert_eq!(
            back.value(crate::params::ParamId(0)),
            s.value(crate::params::ParamId(0))
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(params_from_str("").is_err());
        assert!(params_from_str("wrong header").is_err());
        assert!(params_from_str("pathrank-params v1\nparams 1\nparam x 1 2\n1.0\n").is_err());
        assert!(
            params_from_str("pathrank-params v1\nparams 1\nparam x 1 1\nnot_a_number\n").is_err()
        );
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let text = params_to_string(&sample_store());
        let cut = &text[..text.len() - 10];
        assert!(params_from_str(cut).is_err());
    }

    #[test]
    fn empty_store_roundtrips() {
        let back = params_from_str(&params_to_string(&ParamStore::new())).unwrap();
        assert_eq!(back.len(), 0);
    }
}
