//! Weight initialisers with explicit seeds.

use rand::rngs::StdRng;
use rand::Rng;

use crate::matrix::Matrix;

/// Uniform initialisation in `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut StdRng) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Xavier/Glorot uniform initialisation:
/// `U(-√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rows, cols, -limit, limit, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = uniform(20, 20, -0.5, 0.5, &mut rng);
        assert!(m.data().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn xavier_limit_scales_with_fan() {
        let mut rng = StdRng::seed_from_u64(2);
        let small = xavier_uniform(4, 4, &mut rng);
        let limit = (6.0f32 / 8.0).sqrt();
        assert!(small.data().iter().all(|&v| v.abs() <= limit));
        let big = xavier_uniform(512, 512, &mut rng);
        let big_limit = (6.0f32 / 1024.0).sqrt();
        assert!(big.data().iter().all(|&v| v.abs() <= big_limit));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(7));
        let b = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }
}
