//! Gated Recurrent Unit (Cho et al., 2014) — the sequence encoder of
//! PathRank.
//!
//! Per step, with input `x` (`1 × in`), previous hidden `h` (`1 × H`):
//!
//! ```text
//! z = σ(x·Wz + h·Uz + bz)          update gate
//! r = σ(x·Wr + h·Ur + br)          reset gate
//! c = tanh(x·Wh + (r∘h)·Uh + bh)   candidate state
//! h' = (1 − z)∘h + z∘c
//! ```

use rand::rngs::StdRng;

use crate::init::xavier_uniform;
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};

/// GRU cell parameters.
#[derive(Debug, Clone)]
pub struct GruCell {
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
    in_dim: usize,
    hidden_dim: usize,
}

impl GruCell {
    /// Creates a GRU cell, registering its nine parameter matrices under
    /// `{name}.*`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let mut weight = |suffix: &str, r: usize, c: usize, rng: &mut StdRng| {
            store.add(format!("{name}.{suffix}"), xavier_uniform(r, c, rng))
        };
        let wz = weight("wz", in_dim, hidden_dim, rng);
        let uz = weight("uz", hidden_dim, hidden_dim, rng);
        let wr = weight("wr", in_dim, hidden_dim, rng);
        let ur = weight("ur", hidden_dim, hidden_dim, rng);
        let wh = weight("wh", in_dim, hidden_dim, rng);
        let uh = weight("uh", hidden_dim, hidden_dim, rng);
        let bz = store.add(format!("{name}.bz"), Matrix::zeros(1, hidden_dim));
        let br = store.add(format!("{name}.br"), Matrix::zeros(1, hidden_dim));
        let bh = store.add(format!("{name}.bh"), Matrix::zeros(1, hidden_dim));
        GruCell {
            wz,
            uz,
            bz,
            wr,
            ur,
            br,
            wh,
            uh,
            bh,
            in_dim,
            hidden_dim,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden state dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// One GRU step: `(x: 1×in, h: 1×H) -> h': 1×H`.
    pub fn step(&self, tape: &mut Tape<'_>, x: Var, h: Var) -> Var {
        let gate = |tape: &mut Tape<'_>, w: ParamId, u: ParamId, b: ParamId, hin: Var| {
            let wv = tape.param(w);
            let uv = tape.param(u);
            let bv = tape.param(b);
            let xw = tape.matmul(x, wv);
            let hu = tape.matmul(hin, uv);
            let s = tape.add(xw, hu);
            tape.add_bias(s, bv)
        };
        let z_pre = gate(tape, self.wz, self.uz, self.bz, h);
        let z = tape.sigmoid(z_pre);
        let r_pre = gate(tape, self.wr, self.ur, self.br, h);
        let r = tape.sigmoid(r_pre);
        let rh = tape.mul(r, h);
        let c_pre = gate(tape, self.wh, self.uh, self.bh, rh);
        let c = tape.tanh(c_pre);
        let omz = tape.one_minus(z);
        let keep = tape.mul(omz, h);
        let write = tape.mul(z, c);
        tape.add(keep, write)
    }

    /// Runs the cell over a sequence `xs` (`L × in`, one row per step) from
    /// a zero initial state and returns the final hidden state (`1 × H`).
    pub fn run_sequence(&self, tape: &mut Tape<'_>, xs: Var) -> Var {
        let len = tape.value(xs).rows();
        let mut h = tape.input(Matrix::zeros(1, self.hidden_dim));
        for t in 0..len {
            let x = tape.row(xs, t);
            h = self.step(tape, x, h);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GradStore;
    use rand::SeedableRng;

    fn cell(in_dim: usize, hidden: usize) -> (ParamStore, GruCell) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let cell = GruCell::new(&mut store, "gru", in_dim, hidden, &mut rng);
        (store, cell)
    }

    #[test]
    fn registers_nine_parameters() {
        let (store, cell) = cell(4, 8);
        assert_eq!(store.len(), 9);
        assert_eq!(cell.in_dim(), 4);
        assert_eq!(cell.hidden_dim(), 8);
        assert_eq!(
            store.scalar_count(),
            3 * (4 * 8) + 3 * (8 * 8) + 3 * 8,
            "3 input weights + 3 recurrent weights + 3 biases"
        );
    }

    #[test]
    fn step_output_is_bounded_and_finite() {
        let (store, cell) = cell(3, 5);
        let mut tape = Tape::new(&store);
        let x = tape.input(Matrix::full(1, 3, 10.0));
        let h0 = tape.input(Matrix::zeros(1, 5));
        let h1 = cell.step(&mut tape, x, h0);
        let out = tape.value(h1);
        assert_eq!(out.shape(), (1, 5));
        assert!(out.is_finite());
        // h' is a convex combination of h (0) and tanh-candidate (|c|<1).
        assert!(out.data().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn zero_update_gate_keeps_state() {
        // Forcing z ≈ 0 via a large negative update bias makes h' ≈ h.
        let (mut store, cell) = cell(2, 3);
        *store.value_mut(cell.bz) = Matrix::full(1, 3, -30.0);
        let mut tape = Tape::new(&store);
        let x = tape.input(Matrix::full(1, 2, 1.0));
        let h0 = tape.input(Matrix::from_rows(&[&[0.4, -0.2, 0.9]]));
        let h1 = cell.step(&mut tape, x, h0);
        for (a, b) in tape.value(h1).data().iter().zip([0.4, -0.2, 0.9]) {
            assert!((a - b).abs() < 1e-4, "state must be preserved: {a} vs {b}");
        }
    }

    #[test]
    fn full_update_gate_writes_candidate() {
        // Forcing z ≈ 1 makes h' ≈ tanh-candidate; zeroing the candidate's
        // recurrent weight Uh makes that candidate independent of h.
        let (mut store, cell) = cell(2, 3);
        *store.value_mut(cell.bz) = Matrix::full(1, 3, 30.0);
        *store.value_mut(cell.uh) = Matrix::zeros(3, 3);
        let x_data = Matrix::full(1, 2, 0.3);
        let run = |h0: Matrix, store: &ParamStore| {
            let mut tape = Tape::new(store);
            let x = tape.input(x_data.clone());
            let h0 = tape.input(h0);
            let h1 = cell.step(&mut tape, x, h0);
            tape.value(h1).clone()
        };
        let a = run(Matrix::zeros(1, 3), &store);
        let b = run(Matrix::full(1, 3, 0.5), &store);
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!(
                (x - y).abs() < 1e-4,
                "candidate should dominate: {x} vs {y}"
            );
        }
    }

    #[test]
    fn sequence_gradients_reach_all_parameters() {
        let (store, cell) = cell(3, 4);
        let mut tape = Tape::new(&store);
        let xs = tape.input(Matrix::from_rows(&[
            &[0.1, 0.2, 0.3],
            &[-0.1, 0.0, 0.5],
            &[0.7, -0.3, 0.2],
        ]));
        let h = cell.run_sequence(&mut tape, xs);
        let w = tape.input(Matrix::full(4, 1, 1.0));
        let y = tape.matmul(h, w);
        let loss = tape.mse_scalar(y, 1.0);
        let mut grads = GradStore::new(&store);
        tape.backward(loss, &mut grads);
        for (id, name, _) in store.iter() {
            assert!(
                grads.get(id).is_some(),
                "parameter {name} received no gradient through BPTT"
            );
        }
    }

    /// Finite-difference check of the full unrolled GRU.
    #[test]
    fn finite_difference_through_time() {
        let (mut store, cell) = cell(2, 3);
        let xs_data = Matrix::from_rows(&[&[0.3, -0.4], &[0.1, 0.8], &[-0.6, 0.2]]);
        let head = Matrix::from_rows(&[&[0.5], &[-0.7], &[0.3]]);

        let eval = |store: &ParamStore| -> f32 {
            let mut tape = Tape::new(store);
            let xs = tape.input(xs_data.clone());
            let h = cell.run_sequence(&mut tape, xs);
            let w = tape.input(head.clone());
            let y = tape.matmul(h, w);
            let loss = tape.mse_scalar(y, 0.25);
            tape.scalar(loss)
        };

        let mut grads = GradStore::new(&store);
        {
            let mut tape = Tape::new(&store);
            let xs = tape.input(xs_data.clone());
            let h = cell.run_sequence(&mut tape, xs);
            let w = tape.input(head.clone());
            let y = tape.matmul(h, w);
            let loss = tape.mse_scalar(y, 0.25);
            tape.backward(loss, &mut grads);
        }

        let eps = 1e-2f32;
        for (pid, name, _) in store.clone().iter() {
            let (rows, cols) = store.value(pid).shape();
            // Spot-check a few entries per parameter to keep the test fast.
            for (r, c) in [(0, 0), (rows - 1, cols - 1), (rows / 2, cols / 2)] {
                let orig = store.value(pid).at(r, c);
                *store.value_mut(pid).at_mut(r, c) = orig + eps;
                let up = eval(&store);
                *store.value_mut(pid).at_mut(r, c) = orig - eps;
                let down = eval(&store);
                *store.value_mut(pid).at_mut(r, c) = orig;
                let numeric = (up - down) / (2.0 * eps);
                let analytic = grads.get(pid).map_or(0.0, |g| g.at(r, c));
                assert!(
                    (numeric - analytic).abs() < 1e-2 + 0.08 * numeric.abs().max(analytic.abs()),
                    "{name}({r},{c}): numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }
}
