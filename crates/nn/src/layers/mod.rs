//! Neural layers built on the autodiff tape.
//!
//! Each layer registers its parameters in a [`crate::params::ParamStore`]
//! at construction and exposes a `forward`/`step` method that records ops
//! on a [`crate::tape::Tape`].

pub mod embedding;
pub mod gru;
pub mod linear;
pub mod lstm;

pub use embedding::Embedding;
pub use gru::GruCell;
pub use linear::Linear;
pub use lstm::LstmCell;
