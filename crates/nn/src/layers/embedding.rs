//! Vertex embedding layer.
//!
//! PathRank initialises this from node2vec vectors. The two lookup modes
//! mirror the paper's model variants:
//!
//! * **PR-A1** — [`Embedding::lookup_frozen`]: the table is treated as a
//!   constant; no gradient flows into it;
//! * **PR-A2** — [`Embedding::lookup_trainable`]: lookups are recorded on
//!   the tape and gradients scatter back into the table rows.

use rand::rngs::StdRng;

use crate::init::uniform;
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};

/// An embedding table of shape `vocab × dim`.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// The table parameter handle.
    pub table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Creates a randomly initialised table (`U(-0.05, 0.05)`).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let table = store.add(name.to_string(), uniform(vocab, dim, -0.05, 0.05, rng));
        Embedding { table, vocab, dim }
    }

    /// Creates a table from a pre-trained matrix (e.g. node2vec output).
    pub fn from_matrix(store: &mut ParamStore, name: &str, m: Matrix) -> Self {
        let (vocab, dim) = m.shape();
        let table = store.add(name.to_string(), m);
        Embedding { table, vocab, dim }
    }

    /// Vocabulary size (number of vertices).
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimensionality `M`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Trainable lookup: gathers `indices` rows, gradients scatter back
    /// (PR-A2).
    pub fn lookup_trainable(&self, tape: &mut Tape<'_>, indices: &[u32]) -> Var {
        tape.embed(self.table, indices)
    }

    /// Frozen lookup: gathers `indices` rows as a constant (PR-A1).
    pub fn lookup_frozen(&self, tape: &mut Tape<'_>, store: &ParamStore, indices: &[u32]) -> Var {
        let table = store.value(self.table);
        let mut out = Matrix::zeros(indices.len(), self.dim);
        for (i, &ix) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(table.row(ix as usize));
        }
        tape.input(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GradStore;
    use rand::SeedableRng;

    fn setup() -> (ParamStore, Embedding) {
        let mut store = ParamStore::new();
        let table = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let emb = Embedding::from_matrix(&mut store, "emb", table);
        (store, emb)
    }

    #[test]
    fn shapes_and_lookup() {
        let (store, emb) = setup();
        assert_eq!(emb.vocab(), 3);
        assert_eq!(emb.dim(), 2);
        let mut tape = Tape::new(&store);
        let x = emb.lookup_trainable(&mut tape, &[2, 1]);
        assert_eq!(
            tape.value(x),
            &Matrix::from_rows(&[&[5.0, 6.0], &[3.0, 4.0]])
        );
    }

    #[test]
    fn trainable_lookup_gets_gradients() {
        let (store, emb) = setup();
        let mut tape = Tape::new(&store);
        let x = emb.lookup_trainable(&mut tape, &[0, 2]);
        let pooled = tape.mean_rows(x);
        let w = tape.input(Matrix::from_rows(&[&[1.0], &[1.0]]));
        let y = tape.matmul(pooled, w);
        let loss = tape.mse_scalar(y, 0.0);
        let mut grads = GradStore::new(&store);
        tape.backward(loss, &mut grads);
        let g = grads.get(emb.table).unwrap();
        assert_ne!(g.row(0), &[0.0, 0.0]);
        assert_eq!(g.row(1), &[0.0, 0.0], "untouched row stays zero");
        assert_ne!(g.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn frozen_lookup_gets_no_gradients() {
        let (store, emb) = setup();
        let mut tape = Tape::new(&store);
        let x = emb.lookup_frozen(&mut tape, &store, &[0, 2]);
        let pooled = tape.mean_rows(x);
        let w = tape.input(Matrix::from_rows(&[&[1.0], &[1.0]]));
        let y = tape.matmul(pooled, w);
        let loss = tape.mse_scalar(y, 0.0);
        let mut grads = GradStore::new(&store);
        tape.backward(loss, &mut grads);
        assert!(
            grads.get(emb.table).is_none(),
            "frozen table must receive no gradient"
        );
    }

    #[test]
    fn frozen_and_trainable_agree_on_forward() {
        let (store, emb) = setup();
        let mut t1 = Tape::new(&store);
        let a = emb.lookup_trainable(&mut t1, &[1, 0, 2]);
        let mut t2 = Tape::new(&store);
        let b = emb.lookup_frozen(&mut t2, &store, &[1, 0, 2]);
        assert_eq!(t1.value(a), t2.value(b));
    }

    #[test]
    fn random_init_in_range() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let emb = Embedding::new(&mut store, "e", 10, 4, &mut rng);
        let t = store.value(emb.table);
        assert_eq!(t.shape(), (10, 4));
        assert!(t.data().iter().all(|&v| v.abs() <= 0.05));
    }
}
