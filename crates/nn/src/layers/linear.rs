//! Fully-connected (dense) layer.

use rand::rngs::StdRng;

use crate::init::xavier_uniform;
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};

/// A dense layer `y = x·W + b` with `W: in_dim × out_dim`, `b: 1 × out_dim`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight parameter handle.
    pub w: ParamId,
    /// Bias parameter handle.
    pub b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates the layer, registering `W` (Xavier) and `b` (zeros) in the
    /// store under `{name}.w` / `{name}.b`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let w = store.add(format!("{name}.w"), xavier_uniform(in_dim, out_dim, rng));
        let b = store.add(format!("{name}.b"), Matrix::zeros(1, out_dim));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to `x` (`n × in_dim`), yielding `n × out_dim`.
    pub fn forward(&self, tape: &mut Tape<'_>, x: Var) -> Var {
        let w = tape.param(self.w);
        let b = tape.param(self.b);
        let xw = tape.matmul(x, w);
        tape.add_bias(xw, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GradStore;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let lin = Linear::new(&mut store, "fc", 4, 2, &mut rng);
        assert_eq!(lin.in_dim(), 4);
        assert_eq!(lin.out_dim(), 2);
        // Set bias to a known value and weights to zero: output == bias.
        *store.value_mut(lin.w) = Matrix::zeros(4, 2);
        *store.value_mut(lin.b) = Matrix::from_rows(&[&[0.5, -0.5]]);
        let mut tape = Tape::new(&store);
        let x = tape.input(Matrix::full(3, 4, 1.0));
        let y = lin.forward(&mut tape, x);
        assert_eq!(tape.value(y).shape(), (3, 2));
        for r in 0..3 {
            assert_eq!(tape.value(y).row(r), &[0.5, -0.5]);
        }
    }

    #[test]
    fn gradients_flow_to_both_params() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let lin = Linear::new(&mut store, "fc", 3, 1, &mut rng);
        let mut tape = Tape::new(&store);
        let x = tape.input(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        let y = lin.forward(&mut tape, x);
        let loss = tape.mse_scalar(y, 10.0);
        let mut grads = GradStore::new(&store);
        tape.backward(loss, &mut grads);
        assert!(grads.get(lin.w).is_some());
        assert!(grads.get(lin.b).is_some());
        // dL/db = 2*(y - 10) and dL/dw = x^T * that.
        let dy = 2.0 * (tape.value(y).at(0, 0) - 10.0);
        assert!((grads.get(lin.b).unwrap().at(0, 0) - dy).abs() < 1e-4);
        assert!((grads.get(lin.w).unwrap().at(2, 0) - 3.0 * dy).abs() < 1e-3);
    }
}
