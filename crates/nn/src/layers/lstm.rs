//! Long Short-Term Memory cell (Hochreiter & Schmidhuber, 1997).
//!
//! Provided as an alternative sequence encoder for the encoder ablation
//! (GRU vs LSTM vs mean-pool). Per step, with input `x` (`1 × in`),
//! previous hidden `h` and cell state `c` (`1 × H` each):
//!
//! ```text
//! i = σ(x·Wi + h·Ui + bi)       input gate
//! f = σ(x·Wf + h·Uf + bf)       forget gate
//! o = σ(x·Wo + h·Uo + bo)       output gate
//! g = tanh(x·Wg + h·Ug + bg)    candidate
//! c' = f∘c + i∘g
//! h' = o∘tanh(c')
//! ```

use rand::rngs::StdRng;

use crate::init::xavier_uniform;
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};

/// LSTM cell parameters.
#[derive(Debug, Clone)]
pub struct LstmCell {
    wi: ParamId,
    ui: ParamId,
    bi: ParamId,
    wf: ParamId,
    uf: ParamId,
    bf: ParamId,
    wo: ParamId,
    uo: ParamId,
    bo: ParamId,
    wg: ParamId,
    ug: ParamId,
    bg: ParamId,
    in_dim: usize,
    hidden_dim: usize,
}

impl LstmCell {
    /// Creates an LSTM cell, registering its twelve parameter matrices
    /// under `{name}.*`. The forget-gate bias is initialised to 1 (standard
    /// practice to ease gradient flow early in training).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let mut weight = |suffix: &str, r: usize, c: usize, rng: &mut StdRng| {
            store.add(format!("{name}.{suffix}"), xavier_uniform(r, c, rng))
        };
        let wi = weight("wi", in_dim, hidden_dim, rng);
        let ui = weight("ui", hidden_dim, hidden_dim, rng);
        let wf = weight("wf", in_dim, hidden_dim, rng);
        let uf = weight("uf", hidden_dim, hidden_dim, rng);
        let wo = weight("wo", in_dim, hidden_dim, rng);
        let uo = weight("uo", hidden_dim, hidden_dim, rng);
        let wg = weight("wg", in_dim, hidden_dim, rng);
        let ug = weight("ug", hidden_dim, hidden_dim, rng);
        let bi = store.add(format!("{name}.bi"), Matrix::zeros(1, hidden_dim));
        let bf = store.add(format!("{name}.bf"), Matrix::full(1, hidden_dim, 1.0));
        let bo = store.add(format!("{name}.bo"), Matrix::zeros(1, hidden_dim));
        let bg = store.add(format!("{name}.bg"), Matrix::zeros(1, hidden_dim));
        LstmCell {
            wi,
            ui,
            bi,
            wf,
            uf,
            bf,
            wo,
            uo,
            bo,
            wg,
            ug,
            bg,
            in_dim,
            hidden_dim,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden state dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// One LSTM step: `(x, (h, c)) -> (h', c')`.
    pub fn step(&self, tape: &mut Tape<'_>, x: Var, h: Var, c: Var) -> (Var, Var) {
        let gate = |tape: &mut Tape<'_>, w: ParamId, u: ParamId, b: ParamId| {
            let wv = tape.param(w);
            let uv = tape.param(u);
            let bv = tape.param(b);
            let xw = tape.matmul(x, wv);
            let hu = tape.matmul(h, uv);
            let s = tape.add(xw, hu);
            tape.add_bias(s, bv)
        };
        let i_pre = gate(tape, self.wi, self.ui, self.bi);
        let i = tape.sigmoid(i_pre);
        let f_pre = gate(tape, self.wf, self.uf, self.bf);
        let f = tape.sigmoid(f_pre);
        let o_pre = gate(tape, self.wo, self.uo, self.bo);
        let o = tape.sigmoid(o_pre);
        let g_pre = gate(tape, self.wg, self.ug, self.bg);
        let g = tape.tanh(g_pre);
        let fc = tape.mul(f, c);
        let ig = tape.mul(i, g);
        let c_next = tape.add(fc, ig);
        let tc = tape.tanh(c_next);
        let h_next = tape.mul(o, tc);
        (h_next, c_next)
    }

    /// Runs the cell over `xs` (`L × in`) from zero states, returning the
    /// final hidden state (`1 × H`).
    pub fn run_sequence(&self, tape: &mut Tape<'_>, xs: Var) -> Var {
        let len = tape.value(xs).rows();
        let mut h = tape.input(Matrix::zeros(1, self.hidden_dim));
        let mut c = tape.input(Matrix::zeros(1, self.hidden_dim));
        for t in 0..len {
            let x = tape.row(xs, t);
            let (nh, nc) = self.step(tape, x, h, c);
            h = nh;
            c = nc;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GradStore;
    use rand::SeedableRng;

    fn cell(in_dim: usize, hidden: usize) -> (ParamStore, LstmCell) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(21);
        let cell = LstmCell::new(&mut store, "lstm", in_dim, hidden, &mut rng);
        (store, cell)
    }

    #[test]
    fn registers_twelve_parameters_with_forget_bias_one() {
        let (store, c) = cell(4, 6);
        assert_eq!(store.len(), 12);
        assert_eq!(c.in_dim(), 4);
        assert_eq!(c.hidden_dim(), 6);
        assert!(store.value(c.bf).data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn step_shapes_and_bounds() {
        let (store, cell) = cell(3, 5);
        let mut tape = Tape::new(&store);
        let x = tape.input(Matrix::full(1, 3, 2.0));
        let h0 = tape.input(Matrix::zeros(1, 5));
        let c0 = tape.input(Matrix::zeros(1, 5));
        let (h1, c1) = cell.step(&mut tape, x, h0, c0);
        assert_eq!(tape.value(h1).shape(), (1, 5));
        assert_eq!(tape.value(c1).shape(), (1, 5));
        // |h| = |o · tanh(c)| < 1 always.
        assert!(tape.value(h1).data().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn sequence_gradients_reach_all_parameters() {
        let (store, cell) = cell(2, 3);
        let mut tape = Tape::new(&store);
        let xs = tape.input(Matrix::from_rows(&[
            &[0.5, -0.5],
            &[0.2, 0.9],
            &[-0.7, 0.1],
        ]));
        let h = cell.run_sequence(&mut tape, xs);
        let w = tape.input(Matrix::full(3, 1, 1.0));
        let y = tape.matmul(h, w);
        let loss = tape.mse_scalar(y, 0.3);
        let mut grads = GradStore::new(&store);
        tape.backward(loss, &mut grads);
        for (id, name, _) in store.iter() {
            assert!(grads.get(id).is_some(), "parameter {name} missed by BPTT");
        }
    }

    #[test]
    fn finite_difference_spot_check() {
        let (mut store, cell) = cell(2, 3);
        let xs_data = Matrix::from_rows(&[&[0.4, -0.2], &[0.3, 0.6]]);
        let head = Matrix::from_rows(&[&[0.8], &[-0.4], &[0.1]]);
        let eval = |store: &ParamStore| {
            let mut tape = Tape::new(store);
            let xs = tape.input(xs_data.clone());
            let h = cell.run_sequence(&mut tape, xs);
            let w = tape.input(head.clone());
            let y = tape.matmul(h, w);
            let loss = tape.mse_scalar(y, 0.1);
            tape.scalar(loss)
        };
        let mut grads = GradStore::new(&store);
        {
            let mut tape = Tape::new(&store);
            let xs = tape.input(xs_data.clone());
            let h = cell.run_sequence(&mut tape, xs);
            let w = tape.input(head.clone());
            let y = tape.matmul(h, w);
            let loss = tape.mse_scalar(y, 0.1);
            tape.backward(loss, &mut grads);
        }
        let eps = 1e-2f32;
        for (pid, name, _) in store.clone().iter() {
            let (rows, cols) = store.value(pid).shape();
            for (r, c) in [(0, 0), (rows - 1, cols - 1)] {
                let orig = store.value(pid).at(r, c);
                *store.value_mut(pid).at_mut(r, c) = orig + eps;
                let up = eval(&store);
                *store.value_mut(pid).at_mut(r, c) = orig - eps;
                let down = eval(&store);
                *store.value_mut(pid).at_mut(r, c) = orig;
                let numeric = (up - down) / (2.0 * eps);
                let analytic = grads.get(pid).map_or(0.0, |g| g.at(r, c));
                assert!(
                    (numeric - analytic).abs() < 1e-2 + 0.08 * numeric.abs().max(analytic.abs()),
                    "{name}({r},{c}): numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }
}
