//! Parameter and gradient storage.
//!
//! Parameters live in a [`ParamStore`]; gradients accumulate in a separate
//! [`GradStore`]. The split lets several [`crate::tape::Tape`]s run forward
//! and backward in parallel against one `&ParamStore`, each filling its own
//! `GradStore`, which are then merged and applied by an optimiser — exactly
//! the synchronous mini-batch scheme PathRank's trainer uses.

use crate::matrix::Matrix;

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub usize);

/// Owns all trainable parameters of a model.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    values: Vec<Matrix>,
    names: Vec<String>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.values.push(value);
        self.names.push(name.into());
        ParamId(self.values.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value of parameter `id`.
    #[inline]
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable value of parameter `id` (used by optimisers).
    #[inline]
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// The registered name of parameter `id`.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over `(id, name, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.values
            .iter()
            .zip(self.names.iter())
            .enumerate()
            .map(|(i, (v, n))| (ParamId(i), n.as_str(), v))
    }

    /// Total number of scalar parameters.
    pub fn scalar_count(&self) -> usize {
        self.values.iter().map(|m| m.rows() * m.cols()).sum()
    }
}

/// Accumulates gradients for the parameters of one [`ParamStore`].
///
/// Entries are allocated lazily: parameters untouched by a tape (common for
/// the large embedding matrix under sparse lookups) cost nothing.
#[derive(Debug, Clone)]
pub struct GradStore {
    shapes: Vec<(usize, usize)>,
    grads: Vec<Option<Matrix>>,
}

impl GradStore {
    /// An empty gradient store matching `store`'s layout.
    pub fn new(store: &ParamStore) -> Self {
        GradStore {
            shapes: store.values.iter().map(|m| m.shape()).collect(),
            grads: vec![None; store.len()],
        }
    }

    /// The accumulated gradient of `id`, if any was recorded.
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        self.grads[id.0].as_ref()
    }

    /// Adds `delta` to the gradient of `id`.
    pub fn accumulate(&mut self, id: ParamId, delta: &Matrix) {
        debug_assert_eq!(self.shapes[id.0], delta.shape(), "gradient shape mismatch");
        match &mut self.grads[id.0] {
            Some(g) => g.add_assign(delta),
            slot => *slot = Some(delta.clone()),
        }
    }

    /// Adds the rows of `delta` to rows `rows` of the gradient of `id`
    /// (sparse embedding update). `delta` row `i` goes to gradient row
    /// `rows[i]`; repeated indices accumulate.
    pub fn accumulate_rows(&mut self, id: ParamId, rows: &[u32], delta: &Matrix) {
        let (r, c) = self.shapes[id.0];
        debug_assert_eq!(delta.rows(), rows.len());
        debug_assert_eq!(delta.cols(), c);
        let g = self.grads[id.0].get_or_insert_with(|| Matrix::zeros(r, c));
        for (i, &row) in rows.iter().enumerate() {
            let dst = g.row_mut(row as usize);
            for (d, &s) in dst.iter_mut().zip(delta.row(i).iter()) {
                *d += s;
            }
        }
    }

    /// Merges another gradient store (summing) into this one.
    pub fn merge(&mut self, other: &GradStore) {
        debug_assert_eq!(self.shapes, other.shapes);
        for (mine, theirs) in self.grads.iter_mut().zip(other.grads.iter()) {
            if let Some(t) = theirs {
                match mine {
                    Some(m) => m.add_assign(t),
                    slot => *slot = Some(t.clone()),
                }
            }
        }
    }

    /// Scales every recorded gradient by `s` (e.g. 1/batch-size).
    pub fn scale(&mut self, s: f32) {
        for g in self.grads.iter_mut().flatten() {
            for v in g.data_mut() {
                *v *= s;
            }
        }
    }

    /// Global L2 norm over all recorded gradients.
    pub fn global_norm(&self) -> f32 {
        self.grads
            .iter()
            .flatten()
            .map(|g| g.sq_norm())
            .sum::<f32>()
            .sqrt()
    }

    /// Clips the global norm to `max_norm`; returns the pre-clip norm.
    pub fn clip_global_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
        norm
    }

    /// Clears all recorded gradients (keeps shape metadata).
    pub fn clear(&mut self) {
        self.grads.iter_mut().for_each(|g| *g = None);
    }

    /// Iterates over `(id, gradient)` for parameters that received one.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.grads
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.as_ref().map(|m| (ParamId(i), m)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> (ParamStore, ParamId, ParamId) {
        let mut s = ParamStore::new();
        let a = s.add("a", Matrix::zeros(2, 2));
        let b = s.add("b", Matrix::zeros(3, 1));
        (s, a, b)
    }

    #[test]
    fn add_and_lookup() {
        let (s, a, b) = store();
        assert_eq!(s.len(), 2);
        assert_eq!(s.name(a), "a");
        assert_eq!(s.name(b), "b");
        assert_eq!(s.value(a).shape(), (2, 2));
        assert_eq!(s.scalar_count(), 7);
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn accumulate_dense() {
        let (s, a, _) = store();
        let mut g = GradStore::new(&s);
        assert!(g.get(a).is_none());
        let d = Matrix::full(2, 2, 1.5);
        g.accumulate(a, &d);
        g.accumulate(a, &d);
        assert_eq!(g.get(a).unwrap().at(1, 1), 3.0);
    }

    #[test]
    fn accumulate_sparse_rows() {
        let mut s = ParamStore::new();
        let e = s.add("emb", Matrix::zeros(5, 2));
        let mut g = GradStore::new(&s);
        let delta = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        g.accumulate_rows(e, &[4, 0, 4], &delta);
        let grad = g.get(e).unwrap();
        assert_eq!(grad.row(0), &[2.0, 2.0]);
        assert_eq!(grad.row(4), &[4.0, 4.0], "repeated indices accumulate");
        assert_eq!(grad.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn merge_and_scale() {
        let (s, a, b) = store();
        let mut g1 = GradStore::new(&s);
        let mut g2 = GradStore::new(&s);
        g1.accumulate(a, &Matrix::full(2, 2, 1.0));
        g2.accumulate(a, &Matrix::full(2, 2, 2.0));
        g2.accumulate(b, &Matrix::full(3, 1, 4.0));
        g1.merge(&g2);
        assert_eq!(g1.get(a).unwrap().at(0, 0), 3.0);
        assert_eq!(g1.get(b).unwrap().at(0, 0), 4.0);
        g1.scale(0.5);
        assert_eq!(g1.get(a).unwrap().at(0, 0), 1.5);
        assert_eq!(g1.get(b).unwrap().at(0, 0), 2.0);
    }

    #[test]
    fn clip_global_norm() {
        let (s, a, _) = store();
        let mut g = GradStore::new(&s);
        g.accumulate(a, &Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]));
        assert!((g.global_norm() - 5.0).abs() < 1e-6);
        let pre = g.clip_global_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((g.global_norm() - 1.0).abs() < 1e-6);
        // Clipping below the threshold is a no-op.
        let pre2 = g.clip_global_norm(10.0);
        assert!((pre2 - 1.0).abs() < 1e-6);
        assert!((g.global_norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clear_resets() {
        let (s, a, _) = store();
        let mut g = GradStore::new(&s);
        g.accumulate(a, &Matrix::full(2, 2, 1.0));
        g.clear();
        assert!(g.get(a).is_none());
        assert_eq!(g.iter().count(), 0);
    }
}
