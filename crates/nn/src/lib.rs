//! Minimal pure-Rust neural substrate for PathRank.
//!
//! The paper trains a small network (node2vec-initialised vertex embedding →
//! GRU → fully-connected regression head) with MSE loss. This crate
//! implements exactly the machinery that requires, from scratch:
//!
//! * [`matrix::Matrix`] — a row-major `f32` matrix with the handful of BLAS
//!   operations the models need;
//! * [`params`] — a [`params::ParamStore`] holding trainable parameters and
//!   a [`params::GradStore`] accumulating gradients (kept separate so that
//!   several tapes can compute gradients in parallel against one shared,
//!   read-only store);
//! * [`tape`] — reverse-mode automatic differentiation: build a computation
//!   graph per training sample, call [`tape::Tape::backward`], collect
//!   gradients;
//! * [`layers`] — Embedding (frozen or trainable), Linear, GRU and LSTM
//!   cells built on the tape;
//! * [`optim`] — SGD (with momentum) and Adam, plus global-norm gradient
//!   clipping;
//! * [`init`] — Xavier/uniform initialisers with explicit seeds.
//!
//! Every differentiable operation is verified against finite differences in
//! the test suite.
//!
//! ```
//! use pathrank_nn::matrix::Matrix;
//! use pathrank_nn::params::{GradStore, ParamStore};
//! use pathrank_nn::tape::Tape;
//!
//! let mut store = ParamStore::new();
//! let w = store.add("w", Matrix::from_rows(&[&[2.0], &[1.0]]));
//! let mut tape = Tape::new(&store);
//! let x = tape.input(Matrix::from_rows(&[&[3.0, 4.0]]));
//! let wv = tape.param(w);
//! let y = tape.matmul(x, wv); // 3*2 + 4*1 = 10
//! let loss = tape.mse_scalar(y, 12.0); // (10-12)^2 = 4
//! assert_eq!(tape.value(loss).at(0, 0), 4.0);
//! let mut grads = GradStore::new(&store);
//! tape.backward(loss, &mut grads);
//! // dL/dw = 2*(10-12) * x^T = [-12, -16]
//! assert_eq!(grads.get(w).unwrap().at(0, 0), -12.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod init;
pub mod layers;
pub mod matrix;
pub mod optim;
pub mod params;
pub mod serialize;
pub mod tape;

pub use matrix::Matrix;
pub use params::{GradStore, ParamId, ParamStore};
pub use tape::{Tape, Var};
