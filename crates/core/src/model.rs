//! The PathRank ranking model.
//!
//! Architecture (paper Figure "PathRank Overview"): a path is a vertex
//! sequence `v₁ … v_L`; each vertex is embedded through matrix `B`
//! (initialised from node2vec); a GRU consumes the embedded sequence; the
//! final hidden state passes through a fully-connected layer and a sigmoid
//! to produce the estimated similarity `ŝ ∈ [0, 1]`, trained with MSE
//! against the weighted-Jaccard ground truth.
//!
//! Model variants (paper Tables 1–2 plus ablations):
//!
//! * [`EmbeddingMode::FrozenPretrained`] — **PR-A1**: `B` fixed at the
//!   node2vec values;
//! * [`EmbeddingMode::Trainable`] — **PR-A2**: `B` fine-tuned end-to-end
//!   (the paper's best);
//! * [`EmbeddingMode::TrainableRandom`] — **PR-RAND**: `B` random, no
//!   node2vec (embedding-ablation control);
//! * [`EncoderKind`] — GRU (paper), LSTM, or order-insensitive mean-pool
//!   (encoder ablation);
//! * an optional multi-task auxiliary head that co-predicts the
//!   candidate's normalised length and travel-time ratios, a reproduction
//!   of the full paper's multi-task extension.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use pathrank_nn::layers::{Embedding, GruCell, Linear, LstmCell};
use pathrank_nn::matrix::Matrix;
use pathrank_nn::params::ParamStore;
use pathrank_nn::tape::{Tape, Var};

/// How the vertex-embedding matrix `B` is initialised and updated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmbeddingMode {
    /// PR-A1: node2vec initialisation, frozen during training.
    FrozenPretrained,
    /// PR-A2: node2vec initialisation, fine-tuned during training.
    Trainable,
    /// PR-RAND: random initialisation, fine-tuned (ablation control).
    TrainableRandom,
}

impl EmbeddingMode {
    /// Display name matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            EmbeddingMode::FrozenPretrained => "PR-A1",
            EmbeddingMode::Trainable => "PR-A2",
            EmbeddingMode::TrainableRandom => "PR-RAND",
        }
    }
}

/// Which sequence encoder digests the embedded path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncoderKind {
    /// Gated recurrent unit (the paper's choice).
    Gru,
    /// LSTM (encoder ablation).
    Lstm,
    /// Order-insensitive mean pooling (encoder ablation: shows that
    /// sequence order matters).
    MeanPool,
}

/// Model hyper-parameters.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Embedding dimensionality `M` (the paper sweeps 64 and 128).
    pub dim: usize,
    /// GRU hidden size (the paper ties it to `M`; so do we by default).
    pub hidden: usize,
    /// Embedding variant.
    pub embedding_mode: EmbeddingMode,
    /// Sequence encoder.
    pub encoder: EncoderKind,
    /// Weight of the multi-task auxiliary loss (0 disables the aux head).
    pub multi_task_weight: f32,
    /// Seed for weight initialisation.
    pub seed: u64,
}

impl ModelConfig {
    /// The paper's default: GRU, `M = hidden = dim`, PR-A2, single-task.
    pub fn paper_default(dim: usize) -> Self {
        ModelConfig {
            dim,
            hidden: dim,
            embedding_mode: EmbeddingMode::Trainable,
            encoder: EncoderKind::Gru,
            multi_task_weight: 0.0,
            seed: 7,
        }
    }
}

enum Encoder {
    Gru(GruCell),
    Lstm(LstmCell),
    MeanPool,
}

/// The PathRank model: embedding → sequence encoder → FC head (+ optional
/// auxiliary head).
pub struct PathRankModel {
    /// All trainable parameters.
    pub store: ParamStore,
    embedding: Embedding,
    encoder: Encoder,
    head: Linear,
    aux_head: Option<Linear>,
    cfg: ModelConfig,
}

impl PathRankModel {
    /// Builds the model for a road network with `vocab` vertices.
    ///
    /// `pretrained` supplies the node2vec matrix (`vocab × dim`); it is
    /// required for the pretrained embedding modes and ignored by
    /// [`EmbeddingMode::TrainableRandom`].
    pub fn new(vocab: usize, pretrained: Option<Matrix>, cfg: ModelConfig) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let embedding = match cfg.embedding_mode {
            EmbeddingMode::FrozenPretrained | EmbeddingMode::Trainable => {
                let m = pretrained.expect("pretrained embedding required for PR-A1/PR-A2");
                assert_eq!(
                    m.shape(),
                    (vocab, cfg.dim),
                    "pretrained embedding must be vocab × dim"
                );
                Embedding::from_matrix(&mut store, "embedding", m)
            }
            EmbeddingMode::TrainableRandom => {
                Embedding::new(&mut store, "embedding", vocab, cfg.dim, &mut rng)
            }
        };
        let encoder = match cfg.encoder {
            EncoderKind::Gru => Encoder::Gru(GruCell::new(
                &mut store, "gru", cfg.dim, cfg.hidden, &mut rng,
            )),
            EncoderKind::Lstm => Encoder::Lstm(LstmCell::new(
                &mut store, "lstm", cfg.dim, cfg.hidden, &mut rng,
            )),
            EncoderKind::MeanPool => Encoder::MeanPool,
        };
        let encoder_out = match cfg.encoder {
            EncoderKind::MeanPool => cfg.dim,
            _ => cfg.hidden,
        };
        let head = Linear::new(&mut store, "head", encoder_out, 1, &mut rng);
        let aux_head = (cfg.multi_task_weight > 0.0)
            .then(|| Linear::new(&mut store, "aux_head", encoder_out, 2, &mut rng));
        PathRankModel {
            store,
            embedding,
            encoder,
            head,
            aux_head,
            cfg,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Total number of scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.store.scalar_count()
    }

    /// Records the forward pass for one path (vertex-id sequence) on
    /// `tape`; returns the pre-loss prediction node (`1×1`, in `[0, 1]`).
    pub fn forward(&self, tape: &mut Tape<'_>, vertices: &[u32]) -> Var {
        let (pred, _) = self.forward_with_encoding(tape, vertices);
        pred
    }

    /// Like [`PathRankModel::forward`], also returning the encoder output
    /// (used by the auxiliary head and by tests).
    pub fn forward_with_encoding(&self, tape: &mut Tape<'_>, vertices: &[u32]) -> (Var, Var) {
        assert!(!vertices.is_empty(), "cannot rank an empty path");
        let xs = match self.cfg.embedding_mode {
            EmbeddingMode::FrozenPretrained => {
                self.embedding.lookup_frozen(tape, &self.store, vertices)
            }
            EmbeddingMode::Trainable | EmbeddingMode::TrainableRandom => {
                self.embedding.lookup_trainable(tape, vertices)
            }
        };
        let encoded = match &self.encoder {
            Encoder::Gru(cell) => cell.run_sequence(tape, xs),
            Encoder::Lstm(cell) => cell.run_sequence(tape, xs),
            Encoder::MeanPool => tape.mean_rows(xs),
        };
        let logit = self.head.forward(tape, encoded);
        let pred = tape.sigmoid(logit);
        (pred, encoded)
    }

    /// Records the full training loss for one sample:
    /// `MSE(ŝ, score) + λ · MSE(aux, aux_targets)` when the multi-task head
    /// is enabled. `aux_targets` are the candidate's (length ratio, travel
    /// time ratio) relative to the group's best candidate.
    pub fn loss(
        &self,
        tape: &mut Tape<'_>,
        vertices: &[u32],
        score: f32,
        aux_targets: Option<(f32, f32)>,
    ) -> Var {
        let (pred, encoded) = self.forward_with_encoding(tape, vertices);
        let main = tape.mse_scalar(pred, score);
        match (&self.aux_head, aux_targets) {
            (Some(aux), Some((len_ratio, time_ratio))) if self.cfg.multi_task_weight > 0.0 => {
                let out = aux.forward(tape, encoded); // 1×2
                let out = tape.sigmoid(out);
                let len_pred = tape.row(out, 0);
                // Split the 1×2 row into two scalars via constant masks.
                let mask_len = tape.input(Matrix::from_rows(&[&[1.0], &[0.0]]));
                let mask_time = tape.input(Matrix::from_rows(&[&[0.0], &[1.0]]));
                let l = tape.matmul(len_pred, mask_len);
                let t = tape.matmul(len_pred, mask_time);
                let l_loss = tape.mse_scalar(l, len_ratio);
                let t_loss = tape.mse_scalar(t, time_ratio);
                let aux_sum = tape.add(l_loss, t_loss);
                let aux_scaled = tape.scale(aux_sum, self.cfg.multi_task_weight);
                tape.add(main, aux_scaled)
            }
            _ => main,
        }
    }

    /// Scores one path (inference): builds a throwaway tape and runs the
    /// forward pass.
    pub fn score_path(&self, vertices: &[u32]) -> f32 {
        let mut tape = Tape::new(&self.store);
        let pred = self.forward(&mut tape, vertices);
        tape.scalar(pred)
    }

    /// Scores a batch of paths; candidates are independent, so this is just
    /// a loop (kept for API symmetry with the trainer's batching).
    pub fn score_paths(&self, paths: &[Vec<u32>]) -> Vec<f32> {
        paths.iter().map(|p| self.score_path(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathrank_nn::params::GradStore;

    fn pretrained(vocab: usize, dim: usize) -> Matrix {
        let mut rng = StdRng::seed_from_u64(1);
        pathrank_nn::init::uniform(vocab, dim, -0.1, 0.1, &mut rng)
    }

    #[test]
    fn variants_have_expected_labels() {
        assert_eq!(EmbeddingMode::FrozenPretrained.label(), "PR-A1");
        assert_eq!(EmbeddingMode::Trainable.label(), "PR-A2");
        assert_eq!(EmbeddingMode::TrainableRandom.label(), "PR-RAND");
    }

    #[test]
    fn predictions_are_in_unit_interval() {
        let cfg = ModelConfig::paper_default(16);
        let model = PathRankModel::new(30, Some(pretrained(30, 16)), cfg);
        for path in [vec![0u32, 1, 2], vec![5; 40], vec![29, 0]] {
            let s = model.score_path(&path);
            assert!((0.0..=1.0).contains(&s), "score {s} out of range");
        }
    }

    #[test]
    fn pr_a1_freezes_embedding_pr_a2_does_not() {
        for (mode, expect_grad) in [
            (EmbeddingMode::FrozenPretrained, false),
            (EmbeddingMode::Trainable, true),
            (EmbeddingMode::TrainableRandom, true),
        ] {
            let cfg = ModelConfig {
                embedding_mode: mode,
                ..ModelConfig::paper_default(8)
            };
            let model = PathRankModel::new(10, Some(pretrained(10, 8)), cfg);
            let mut tape = Tape::new(&model.store);
            let loss = model.loss(&mut tape, &[1, 2, 3], 0.7, None);
            let mut grads = GradStore::new(&model.store);
            tape.backward(loss, &mut grads);
            let emb_grad = grads.get(model.embedding.table).is_some();
            assert_eq!(emb_grad, expect_grad, "mode {mode:?}");
        }
    }

    #[test]
    fn all_encoders_run_and_differ() {
        let emb = pretrained(12, 8);
        let score = |encoder: EncoderKind| {
            let cfg = ModelConfig {
                encoder,
                ..ModelConfig::paper_default(8)
            };
            let model = PathRankModel::new(12, Some(emb.clone()), cfg);
            model.score_path(&[0, 3, 7, 11])
        };
        let g = score(EncoderKind::Gru);
        let l = score(EncoderKind::Lstm);
        let m = score(EncoderKind::MeanPool);
        for s in [g, l, m] {
            assert!((0.0..=1.0).contains(&s));
        }
        // Different architectures, same seed: outputs should not coincide.
        assert!(g != l || l != m);
    }

    #[test]
    fn mean_pool_is_order_insensitive_gru_is_not() {
        let emb = pretrained(12, 8);
        let cfg = ModelConfig {
            encoder: EncoderKind::MeanPool,
            ..ModelConfig::paper_default(8)
        };
        let pool = PathRankModel::new(12, Some(emb.clone()), cfg);
        let fwd = pool.score_path(&[0, 1, 2, 3]);
        let rev = pool.score_path(&[3, 2, 1, 0]);
        assert!((fwd - rev).abs() < 1e-7, "mean-pool must ignore order");

        let gru = PathRankModel::new(12, Some(emb), ModelConfig::paper_default(8));
        let fwd = gru.score_path(&[0, 1, 2, 3]);
        let rev = gru.score_path(&[3, 2, 1, 0]);
        assert!((fwd - rev).abs() > 1e-6, "GRU must be order sensitive");
    }

    #[test]
    fn multi_task_head_contributes_to_loss() {
        let cfg = ModelConfig {
            multi_task_weight: 0.5,
            ..ModelConfig::paper_default(8)
        };
        let model = PathRankModel::new(10, Some(pretrained(10, 8)), cfg);
        let mut t1 = Tape::new(&model.store);
        let plain = model.loss(&mut t1, &[1, 2, 3], 0.5, None);
        let mut t2 = Tape::new(&model.store);
        let multi = model.loss(&mut t2, &[1, 2, 3], 0.5, Some((0.9, 0.8)));
        assert!(
            t2.scalar(multi) > t1.scalar(plain),
            "aux loss must add a non-negative term"
        );
        // And gradients reach the aux head.
        let mut grads = GradStore::new(&model.store);
        t2.backward(multi, &mut grads);
        let aux = model.aux_head.as_ref().unwrap();
        assert!(grads.get(aux.w).is_some());
    }

    #[test]
    fn parameter_count_scales_with_dim() {
        let small = PathRankModel::new(20, Some(pretrained(20, 8)), ModelConfig::paper_default(8));
        let large =
            PathRankModel::new(20, Some(pretrained(20, 16)), ModelConfig::paper_default(16));
        assert!(large.parameter_count() > small.parameter_count());
    }

    #[test]
    #[should_panic(expected = "pretrained embedding must be vocab × dim")]
    fn rejects_mismatched_pretrained_shape() {
        let _ = PathRankModel::new(10, Some(pretrained(10, 4)), ModelConfig::paper_default(8));
    }

    #[test]
    #[should_panic(expected = "cannot rank an empty path")]
    fn rejects_empty_path() {
        let model = PathRankModel::new(10, Some(pretrained(10, 8)), ModelConfig::paper_default(8));
        let _ = model.score_path(&[]);
    }
}
