//! The paper's four evaluation metrics.
//!
//! * **MAE** — mean absolute error between estimated and ground-truth
//!   ranking scores;
//! * **MARE** — mean absolute *relative* error, `Σ|ŝᵢ − sᵢ| / Σ|sᵢ|`
//!   (the aggregate form; the per-item ratio form explodes when a ground
//!   truth is near zero, and the paper's reported MARE ≈ MAE / mean(s)
//!   matches the aggregate form);
//! * **Kendall τ** — rank correlation by concordant/discordant pairs
//!   (τ-b, tie-corrected);
//! * **Spearman ρ** — Pearson correlation of (average) ranks.
//!
//! τ and ρ are computed per ranking query (one trajectory's candidate set)
//! and averaged across queries; MAE/MARE pool all candidates.

/// Mean absolute error.
///
/// # Panics
/// If the slices differ in length or are empty.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    check(pred, truth);
    let total: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t).abs()).sum();
    total / pred.len() as f64
}

/// Mean absolute relative error, aggregate form `Σ|p−t| / Σ|t|`.
pub fn mare(pred: &[f64], truth: &[f64]) -> f64 {
    check(pred, truth);
    let err: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t).abs()).sum();
    let mass: f64 = truth.iter().map(|t| t.abs()).sum();
    if mass == 0.0 {
        return if err == 0.0 { 0.0 } else { f64::INFINITY };
    }
    err / mass
}

/// Kendall rank correlation coefficient, tie-corrected (τ-b).
///
/// Returns 0 when either ranking is constant (no information).
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    check(a, b);
    let n = a.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_a = 0i64;
    let mut ties_b = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let ta = da == 0.0;
            let tb = db == 0.0;
            match (ta, tb) {
                (true, true) => {}
                (true, false) => ties_a += 1,
                (false, true) => ties_b += 1,
                (false, false) => {
                    if da.signum() == db.signum() {
                        concordant += 1;
                    } else {
                        discordant += 1;
                    }
                }
            }
        }
    }
    let n0 = (concordant + discordant + ties_a) as f64;
    let n1 = (concordant + discordant + ties_b) as f64;
    if n0 == 0.0 || n1 == 0.0 {
        return 0.0;
    }
    (concordant - discordant) as f64 / (n0 * n1).sqrt()
}

/// Average ranks (1-based), ties receive the mean of their rank range.
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| values[i].total_cmp(&values[j]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j share the average rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman's rank correlation coefficient (Pearson correlation of average
/// ranks). Returns 0 when either side is constant.
pub fn spearman_rho(a: &[f64], b: &[f64]) -> f64 {
    check(a, b);
    let ra = average_ranks(a);
    let rb = average_ranks(b);
    pearson(&ra, &rb)
}

/// Pearson correlation; 0 when either side has zero variance.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    check(a, b);
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va * vb).sqrt()
}

/// Normalised discounted cumulative gain at cutoff `k`, using the ground
/// truth scores as graded relevance. 1.0 means the predicted order places
/// the most relevant candidates first; returns 1.0 for constant truth
/// (any order is ideal).
pub fn ndcg_at_k(pred: &[f64], truth: &[f64], k: usize) -> f64 {
    check(pred, truth);
    let k = k.min(pred.len());
    let dcg_of = |order: &[usize]| -> f64 {
        order
            .iter()
            .take(k)
            .enumerate()
            .map(|(rank, &i)| truth[i] / ((rank + 2) as f64).log2())
            .sum()
    };
    let mut by_pred: Vec<usize> = (0..pred.len()).collect();
    by_pred.sort_by(|&i, &j| pred[j].total_cmp(&pred[i]));
    let mut by_truth: Vec<usize> = (0..truth.len()).collect();
    by_truth.sort_by(|&i, &j| truth[j].total_cmp(&truth[i]));
    let ideal = dcg_of(&by_truth);
    if ideal == 0.0 {
        return 1.0;
    }
    dcg_of(&by_pred) / ideal
}

/// Whether the prediction's top-ranked candidate is (one of) the truth's
/// top-ranked candidates. Averaged over queries this is the "hit@1" rate —
/// the probability that the system's first suggestion is the path the
/// driver actually prefers.
pub fn top1_hit(pred: &[f64], truth: &[f64]) -> bool {
    check(pred, truth);
    let best_pred = pred
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty");
    let best_truth = truth.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    truth[best_pred] == best_truth
}

fn check(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "metric inputs must have equal length");
    assert!(!a.is_empty(), "metric inputs must be non-empty");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_known_values() {
        assert_eq!(mae(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
        assert!((mae(&[1.0, 2.0], &[2.0, 4.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mare_known_values() {
        // Σ|p−t| = 3, Σ|t| = 6 → 0.5.
        assert!((mare(&[1.0, 2.0], &[2.0, 4.0]) - 0.5).abs() < 1e-12);
        assert_eq!(mare(&[0.0], &[0.0]), 0.0);
        assert_eq!(mare(&[1.0], &[0.0]), f64::INFINITY);
    }

    #[test]
    fn kendall_perfect_and_reversed() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((kendall_tau(&a, &b) - 1.0).abs() < 1e-12);
        let rev = [40.0, 30.0, 20.0, 10.0];
        assert!((kendall_tau(&a, &rev) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_known_mixed_case() {
        // a = [1,2,3], b = [1,3,2]: pairs (1,2)+, (1,3)+, (2,3)-: tau = 1/3.
        let tau = kendall_tau(&[1.0, 2.0, 3.0], &[1.0, 3.0, 2.0]);
        assert!((tau - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_with_ties_matches_tau_b() {
        // scipy.stats.kendalltau([1,2,2,3], [1,2,3,4]) = 0.9128709291752769
        let tau = kendall_tau(&[1.0, 2.0, 2.0, 3.0], &[1.0, 2.0, 3.0, 4.0]);
        assert!((tau - 0.912_870_929_175_276_9).abs() < 1e-12, "got {tau}");
    }

    #[test]
    fn kendall_constant_input_is_zero() {
        assert_eq!(kendall_tau(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn average_ranks_with_ties() {
        // values 10, 20, 20, 30 -> ranks 1, 2.5, 2.5, 4.
        assert_eq!(
            average_ranks(&[10.0, 20.0, 20.0, 30.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
        // Reversed order is handled through sorting.
        assert_eq!(average_ranks(&[30.0, 10.0]), vec![2.0, 1.0]);
    }

    #[test]
    fn spearman_perfect_monotone() {
        // Any monotone transform gives rho = 1.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 4.0, 9.0, 16.0, 25.0];
        assert!((spearman_rho(&a, &b) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = b.iter().map(|x| -x).collect();
        assert!((spearman_rho(&a, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_with_ties_matches_reference() {
        // Ranks of [1,2,2,3] are [1, 2.5, 2.5, 4]; Pearson against
        // [1,2,3,4] gives 4.5/√(4.5·5) = 0.9486832980505138 (scipy agrees).
        let rho = spearman_rho(&[1.0, 2.0, 2.0, 3.0], &[1.0, 2.0, 3.0, 4.0]);
        assert!((rho - 0.948_683_298_050_513_8).abs() < 1e-12, "got {rho}");
    }

    #[test]
    fn spearman_constant_is_zero() {
        assert_eq!(spearman_rho(&[5.0, 5.0, 5.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn pearson_linearity() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_perfect_and_inverted() {
        let truth = [0.1, 0.5, 1.0, 0.3];
        assert!((ndcg_at_k(&truth, &truth, 4) - 1.0).abs() < 1e-12);
        // Inverted ranking is strictly worse but still positive (all
        // relevances are positive).
        let inverted: Vec<f64> = truth.iter().map(|x| -x).collect();
        let n = ndcg_at_k(&inverted, &truth, 4);
        assert!(n < 1.0 && n > 0.0, "got {n}");
    }

    #[test]
    fn ndcg_known_value_at_cutoff_one() {
        // Prediction puts item 0 (truth 0.5) first; ideal puts item 1
        // (truth 1.0) first. NDCG@1 = 0.5 / 1.0.
        let pred = [0.9, 0.1];
        let truth = [0.5, 1.0];
        assert!((ndcg_at_k(&pred, &truth, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ndcg_constant_truth_is_one() {
        assert_eq!(ndcg_at_k(&[3.0, 2.0, 1.0], &[0.0, 0.0, 0.0], 3), 1.0);
    }

    #[test]
    fn top1_hit_cases() {
        assert!(top1_hit(&[0.9, 0.1], &[1.0, 0.2]));
        assert!(!top1_hit(&[0.1, 0.9], &[1.0, 0.2]));
        // Ties in truth: picking either top is a hit.
        assert!(top1_hit(&[0.9, 0.8], &[1.0, 1.0]));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_mismatched_lengths() {
        let _ = mae(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty() {
        let _ = kendall_tau(&[], &[]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn finite_vec() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-100.0f64..100.0, 2..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn correlations_are_bounded(a in finite_vec(), b in finite_vec()) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            for v in [kendall_tau(a, b), spearman_rho(a, b), pearson(a, b)] {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v), "out of range: {v}");
            }
        }

        #[test]
        fn self_correlation_is_one_without_full_ties(a in finite_vec()) {
            // Constant vectors are the degenerate zero case by convention.
            let distinct = a.iter().any(|&x| x != a[0]);
            let tau = kendall_tau(&a, &a);
            let rho = spearman_rho(&a, &a);
            if distinct {
                prop_assert!((tau - 1.0).abs() < 1e-9, "tau {tau}");
                prop_assert!((rho - 1.0).abs() < 1e-9, "rho {rho}");
            } else {
                prop_assert_eq!(tau, 0.0);
                prop_assert_eq!(rho, 0.0);
            }
        }

        #[test]
        fn negation_flips_correlations(a in finite_vec()) {
            prop_assume!(a.iter().any(|&x| x != a[0]));
            let neg: Vec<f64> = a.iter().map(|x| -x).collect();
            prop_assert!((kendall_tau(&a, &neg) + 1.0).abs() < 1e-9);
            prop_assert!((spearman_rho(&a, &neg) + 1.0).abs() < 1e-9);
        }

        #[test]
        fn spearman_invariant_under_monotone_transform(a in finite_vec(), b in finite_vec()) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            // exp is strictly monotone: ranks unchanged.
            let ea: Vec<f64> = a.iter().map(|x| (x / 50.0).exp()).collect();
            let before = spearman_rho(a, b);
            let after = spearman_rho(&ea, b);
            prop_assert!((before - after).abs() < 1e-6, "{before} vs {after}");
            let t_before = kendall_tau(a, b);
            let t_after = kendall_tau(&ea, b);
            prop_assert!((t_before - t_after).abs() < 1e-9);
        }

        #[test]
        fn average_ranks_sum_is_invariant(a in finite_vec()) {
            // Σ ranks = n(n+1)/2 regardless of ties.
            let ranks = average_ranks(&a);
            let n = a.len() as f64;
            let sum: f64 = ranks.iter().sum();
            prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
            // Ranks are within [1, n].
            prop_assert!(ranks.iter().all(|&r| (1.0..=n).contains(&r)));
        }

        #[test]
        fn mae_and_mare_properties(a in finite_vec()) {
            // MAE(x, x) = 0 and MARE(x, x) = 0.
            prop_assert_eq!(mae(&a, &a), 0.0);
            prop_assert_eq!(mare(&a, &a), 0.0);
            // Shifting predictions by +c gives MAE exactly c.
            let shifted: Vec<f64> = a.iter().map(|x| x + 2.5).collect();
            prop_assert!((mae(&shifted, &a) - 2.5).abs() < 1e-9);
        }

        #[test]
        fn ndcg_bounded_and_perfect_on_truth(a in finite_vec()) {
            let nonneg: Vec<f64> = a.iter().map(|x| x.abs()).collect();
            let v = ndcg_at_k(&nonneg, &nonneg, nonneg.len());
            prop_assert!((v - 1.0).abs() < 1e-9, "self NDCG {v}");
        }
    }
}
