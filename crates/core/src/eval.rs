//! Ranking evaluation and non-learning baselines.
//!
//! Evaluation follows the paper: for every test trajectory, the candidate
//! set is scored by the model; MAE/MARE pool all candidates across queries,
//! while Kendall τ and Spearman ρ are computed per query (a ranking is only
//! meaningful within one candidate set) and averaged.

use std::fmt;

use pathrank_spatial::graph::{CostModel, Graph};

use crate::candidates::TrainingGroup;
use crate::metrics::{kendall_tau, mae, mare, spearman_rho};
use crate::model::PathRankModel;

/// The paper's four metrics for one evaluation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Mean absolute error.
    pub mae: f64,
    /// Mean absolute relative error.
    pub mare: f64,
    /// Mean per-query Kendall τ-b.
    pub tau: f64,
    /// Mean per-query Spearman ρ.
    pub rho: f64,
    /// Number of ranking queries evaluated.
    pub n_queries: usize,
}

impl fmt::Display for EvalResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MAE {:.4}  MARE {:.4}  tau {:.4}  rho {:.4}  ({} queries)",
            self.mae, self.mare, self.tau, self.rho, self.n_queries
        )
    }
}

/// Evaluates arbitrary per-group scorers (models or baselines).
///
/// `scorer` receives a group and returns one estimated score per candidate,
/// in order. Groups with fewer than two candidates are skipped for τ/ρ but
/// still counted in MAE/MARE.
pub fn evaluate_with(
    groups: &[TrainingGroup],
    mut scorer: impl FnMut(&TrainingGroup) -> Vec<f64>,
) -> EvalResult {
    assert!(!groups.is_empty(), "evaluation needs at least one group");
    let mut all_pred = Vec::new();
    let mut all_truth = Vec::new();
    let mut tau_sum = 0.0;
    let mut rho_sum = 0.0;
    let mut rank_queries = 0usize;

    for group in groups {
        if group.is_empty() {
            continue;
        }
        let pred = scorer(group);
        assert_eq!(pred.len(), group.len(), "scorer must score every candidate");
        let truth: Vec<f64> = group.candidates.iter().map(|c| c.score).collect();
        if pred.len() >= 2 {
            tau_sum += kendall_tau(&pred, &truth);
            rho_sum += spearman_rho(&pred, &truth);
            rank_queries += 1;
        }
        all_pred.extend_from_slice(&pred);
        all_truth.extend(truth);
    }
    assert!(!all_pred.is_empty(), "no scored candidates");
    EvalResult {
        mae: mae(&all_pred, &all_truth),
        mare: mare(&all_pred, &all_truth),
        tau: if rank_queries > 0 {
            tau_sum / rank_queries as f64
        } else {
            0.0
        },
        rho: if rank_queries > 0 {
            rho_sum / rank_queries as f64
        } else {
            0.0
        },
        n_queries: rank_queries,
    }
}

/// Evaluates a trained PathRank model on test groups.
pub fn evaluate_model(model: &PathRankModel, groups: &[TrainingGroup]) -> EvalResult {
    evaluate_with(groups, |group| {
        group
            .candidates
            .iter()
            .map(|c| {
                let vertices: Vec<u32> = c.path.vertices().iter().map(|v| v.0).collect();
                model.score_path(&vertices) as f64
            })
            .collect()
    })
}

/// Non-learning baselines (extension experiment B1): classic routing
/// objectives recast as ranking scores.
pub mod baselines {
    use super::*;

    /// Scores each candidate by `min_length_in_group / length(candidate)`:
    /// the shortest path gets 1, longer paths decay. This is "rank by
    /// shortest path" expressed as a `[0, 1]` score.
    pub fn shortest_length_ratio(g: &Graph, group: &TrainingGroup) -> Vec<f64> {
        ratio_scores(group, |c| c.cost(g, CostModel::Length))
    }

    /// Same as [`shortest_length_ratio`] but on free-flow travel time
    /// ("rank by fastest path").
    pub fn fastest_time_ratio(g: &Graph, group: &TrainingGroup) -> Vec<f64> {
        ratio_scores(group, |c| c.cost(g, CostModel::TravelTime))
    }

    /// Equal-weight blend of the length and time baselines.
    pub fn length_time_blend(g: &Graph, group: &TrainingGroup) -> Vec<f64> {
        let a = shortest_length_ratio(g, group);
        let b = fastest_time_ratio(g, group);
        a.iter().zip(b).map(|(x, y)| (x + y) / 2.0).collect()
    }

    fn ratio_scores(
        group: &TrainingGroup,
        cost: impl Fn(&pathrank_spatial::path::Path) -> f64,
    ) -> Vec<f64> {
        let costs: Vec<f64> = group.candidates.iter().map(|c| cost(&c.path)).collect();
        let best = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        costs
            .iter()
            .map(|&c| if c > 0.0 { best / c } else { 0.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{generate_groups, CandidateConfig, Strategy};
    use pathrank_spatial::generators::{region_network, RegionConfig};
    use pathrank_traj::dataset::split_trips;
    use pathrank_traj::simulator::{simulate_fleet, SimulationConfig};

    fn groups() -> (Graph, Vec<TrainingGroup>) {
        let g = region_network(&RegionConfig::small_test(), 50);
        let trips = simulate_fleet(&g, &SimulationConfig::small_test(), 51);
        let (paths, _) = split_trips(&trips, 1.0, 52);
        let cfg = CandidateConfig {
            k: 5,
            ..CandidateConfig::paper_default(Strategy::DTkDI)
        };
        let gs = generate_groups(&g, &paths[..8.min(paths.len())], &cfg, 2);
        (g, gs)
    }

    #[test]
    fn perfect_scorer_achieves_perfect_metrics() {
        let (_, gs) = groups();
        let r = evaluate_with(&gs, |g| g.candidates.iter().map(|c| c.score).collect());
        assert!(r.mae < 1e-12);
        assert!(r.mare < 1e-12);
        assert!((r.tau - 1.0).abs() < 1e-9, "tau {}", r.tau);
        assert!((r.rho - 1.0).abs() < 1e-9, "rho {}", r.rho);
        assert!(r.n_queries > 0);
    }

    #[test]
    fn inverted_scorer_gets_negative_rank_correlation() {
        let (_, gs) = groups();
        let r = evaluate_with(&gs, |g| {
            g.candidates.iter().map(|c| 1.0 - c.score).collect()
        });
        assert!(r.tau < -0.9, "tau {}", r.tau);
        assert!(r.rho < -0.9, "rho {}", r.rho);
        assert!(r.mae > 0.0);
    }

    #[test]
    fn constant_scorer_is_uninformative() {
        let (_, gs) = groups();
        let r = evaluate_with(&gs, |g| vec![0.5; g.len()]);
        assert_eq!(r.tau, 0.0);
        assert_eq!(r.rho, 0.0);
    }

    #[test]
    fn baselines_are_imperfect_and_oracle_wins() {
        let (g, gs) = groups();
        let oracle = evaluate_with(&gs, |grp| grp.candidates.iter().map(|c| c.score).collect());
        let len_base = evaluate_with(&gs, |grp| baselines::shortest_length_ratio(&g, grp));
        let time_base = evaluate_with(&gs, |grp| baselines::fastest_time_ratio(&g, grp));
        let blend = evaluate_with(&gs, |grp| baselines::length_time_blend(&g, grp));
        // Drivers deviate from both classic objectives by construction
        // (the paper's motivating observation), so no baseline may rank
        // perfectly — and the oracle must dominate all of them.
        for (name, r) in [("len", len_base), ("time", time_base), ("blend", blend)] {
            assert!((-1.0..=1.0).contains(&r.tau), "{name} tau out of range");
            assert!(
                r.tau < 0.999,
                "{name} baseline suspiciously perfect: {}",
                r.tau
            );
            assert!(r.mae > 0.0, "{name} baseline cannot be exact on MAE");
            assert!(oracle.tau > r.tau, "oracle must beat the {name} baseline");
        }
    }

    #[test]
    fn display_formats_all_metrics() {
        let r = EvalResult {
            mae: 0.1,
            mare: 0.2,
            tau: 0.3,
            rho: 0.4,
            n_queries: 9,
        };
        let s = r.to_string();
        for needle in ["0.1000", "0.2000", "0.3000", "0.4000", "9"] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn rejects_empty_groups() {
        let _ = evaluate_with(&[], |_| vec![]);
    }
}
