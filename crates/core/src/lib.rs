//! PathRank — the paper's primary contribution.
//!
//! PathRank ranks candidate paths between a source and destination the way
//! local drivers would, learned from historical trajectories. This crate
//! wires the substrates together into the full method:
//!
//! * [`candidates`] — training-data generation: for each trajectory path,
//!   build a compact candidate set with **TkDI** (top-k shortest paths) or
//!   **D-TkDI** (diversified top-k, the paper's better strategy) and label
//!   every candidate with its weighted-Jaccard similarity to the
//!   trajectory;
//! * [`model`] — the ranking model: vertex embedding (node2vec-initialised)
//!   → GRU → fully-connected head that regresses the similarity score.
//!   Variants: **PR-A1** (frozen embedding), **PR-A2** (fine-tuned
//!   embedding), **PR-RAND** (random-initialised, for the ablation), plus
//!   LSTM and mean-pool encoders and an optional multi-task auxiliary head;
//! * [`trainer`] — synchronous mini-batch training with parallel gradient
//!   computation, gradient clipping and Adam;
//! * [`metrics`] — MAE, MARE, Kendall τ-b and Spearman ρ, the paper's four
//!   evaluation metrics;
//! * [`eval`] — per-query ranking evaluation plus the non-learning
//!   baselines;
//! * [`pipeline`] — the end-to-end experiment driver used by the
//!   table/figure harness in `pathrank-bench`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod candidates;
pub mod eval;
pub mod metrics;
pub mod model;
pub mod pipeline;
pub mod trainer;

pub use candidates::{generate_group, generate_groups, CandidateConfig, Strategy, TrainingGroup};
pub use eval::{evaluate_model, EvalResult};
pub use model::{EmbeddingMode, EncoderKind, ModelConfig, PathRankModel};
pub use pipeline::{ExperimentConfig, ExperimentResult, Workbench};
pub use trainer::{train, TrainConfig, TrainReport};
