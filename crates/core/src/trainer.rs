//! Training loop: synchronous mini-batch SGD with parallel gradient
//! computation.
//!
//! Each mini-batch is split across worker threads; every worker replays the
//! model forward/backward on its samples against the *shared, read-only*
//! parameter store, filling a private gradient store. Workers' gradients
//! are merged, averaged, clipped and applied by Adam. This is exactly
//! mini-batch SGD — parallelism changes wall-clock time, not semantics.

use crossbeam::thread;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use pathrank_nn::optim::{Adam, Optimizer};
use pathrank_nn::params::GradStore;
use pathrank_nn::tape::Tape;
use pathrank_spatial::graph::{CostModel, Graph};

use crate::candidates::TrainingGroup;
use crate::model::PathRankModel;

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training samples.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Global gradient-norm clip (0 disables clipping).
    pub clip_norm: f32,
    /// Worker threads for gradient computation.
    pub threads: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            lr: 1e-3,
            lr_decay: 0.9,
            batch_size: 16,
            clip_norm: 5.0,
            threads: 2,
            seed: 13,
        }
    }
}

/// One flattened training sample.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Vertex-id sequence of the candidate path.
    pub vertices: Vec<u32>,
    /// Ground-truth ranking score in `[0, 1]`.
    pub score: f32,
    /// Multi-task targets (length ratio, travel-time ratio), when enabled.
    pub aux: Option<(f32, f32)>,
}

/// What `train` reports back.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Number of training samples.
    pub samples: usize,
}

/// Flattens training groups into per-candidate samples. When `multi_task`
/// is set, each sample also carries its (length, travel-time) ratios
/// relative to the best candidate in its group.
pub fn prepare_samples(g: &Graph, groups: &[TrainingGroup], multi_task: bool) -> Vec<Sample> {
    let mut samples = Vec::new();
    for group in groups {
        let (min_len, min_time) = if multi_task {
            let min_len = group
                .candidates
                .iter()
                .map(|c| c.path.cost(g, CostModel::Length))
                .fold(f64::INFINITY, f64::min);
            let min_time = group
                .candidates
                .iter()
                .map(|c| c.path.cost(g, CostModel::TravelTime))
                .fold(f64::INFINITY, f64::min);
            (min_len, min_time)
        } else {
            (0.0, 0.0)
        };
        for c in &group.candidates {
            let vertices: Vec<u32> = c.path.vertices().iter().map(|v| v.0).collect();
            let aux = multi_task.then(|| {
                let len_ratio = (min_len / c.path.cost(g, CostModel::Length)) as f32;
                let time_ratio = (min_time / c.path.cost(g, CostModel::TravelTime)) as f32;
                (len_ratio, time_ratio)
            });
            samples.push(Sample {
                vertices,
                score: c.score as f32,
                aux,
            });
        }
    }
    samples
}

/// Trains `model` on `samples`. Deterministic given the config seed and
/// thread count (per-sample gradients are summed in a fixed order).
pub fn train(model: &mut PathRankModel, samples: &[Sample], cfg: &TrainConfig) -> TrainReport {
    assert!(!samples.is_empty(), "no training samples");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut opt = Adam::new(cfg.lr);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        for batch in order.chunks(cfg.batch_size.max(1)) {
            let (mut grads, loss_sum) = batch_gradients(model, samples, batch, cfg.threads);
            grads.scale(1.0 / batch.len() as f32);
            if cfg.clip_norm > 0.0 {
                grads.clip_global_norm(cfg.clip_norm);
            }
            opt.step(&mut model.store, &grads);
            epoch_loss += loss_sum;
        }
        epoch_losses.push(epoch_loss / samples.len() as f64);
        opt.set_learning_rate(opt.learning_rate() * cfg.lr_decay);
        let _ = epoch;
    }
    TrainReport {
        epoch_losses,
        samples: samples.len(),
    }
}

/// Computes summed gradients and loss for one batch, in parallel.
fn batch_gradients(
    model: &PathRankModel,
    samples: &[Sample],
    batch: &[usize],
    threads: usize,
) -> (GradStore, f64) {
    let threads = threads.max(1).min(batch.len());
    if threads == 1 {
        return worker(model, samples, batch);
    }
    let chunk = batch.len().div_ceil(threads);
    let partials: Vec<(GradStore, f64)> = thread::scope(|scope| {
        let handles: Vec<_> = batch
            .chunks(chunk)
            .map(|ids| scope.spawn(move |_| worker(model, samples, ids)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("trainer worker panicked"))
            .collect()
    })
    .expect("thread scope failed");

    let mut iter = partials.into_iter();
    let (mut grads, mut loss) = iter.next().expect("at least one worker");
    for (g, l) in iter {
        grads.merge(&g);
        loss += l;
    }
    (grads, loss)
}

fn worker(model: &PathRankModel, samples: &[Sample], ids: &[usize]) -> (GradStore, f64) {
    let mut grads = GradStore::new(&model.store);
    let mut loss_sum = 0.0f64;
    for &i in ids {
        let s = &samples[i];
        let mut tape = Tape::new(&model.store);
        let loss = model.loss(&mut tape, &s.vertices, s.score, s.aux);
        loss_sum += tape.scalar(loss) as f64;
        tape.backward(loss, &mut grads);
    }
    (grads, loss_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{generate_groups, CandidateConfig, Strategy};
    use crate::model::{EmbeddingMode, ModelConfig, PathRankModel};
    use pathrank_embed::node2vec::{train_node2vec, Node2VecConfig};
    use pathrank_spatial::generators::{region_network, RegionConfig};
    use pathrank_traj::dataset::split_trips;
    use pathrank_traj::simulator::{simulate_fleet, SimulationConfig};

    fn tiny_setup() -> (Graph, Vec<TrainingGroup>) {
        let g = region_network(&RegionConfig::small_test(), 42);
        let trips = simulate_fleet(&g, &SimulationConfig::small_test(), 43);
        let (train_paths, _) = split_trips(&trips, 1.0, 44);
        let cfg = CandidateConfig {
            k: 4,
            ..CandidateConfig::paper_default(Strategy::DTkDI)
        };
        let groups = generate_groups(&g, &train_paths[..6.min(train_paths.len())], &cfg, 2);
        (g, groups)
    }

    fn tiny_model(g: &Graph, dim: usize, mode: EmbeddingMode) -> PathRankModel {
        let n2v = Node2VecConfig {
            dim,
            walks_per_vertex: 3,
            walk_length: 12,
            epochs: 1,
            ..Default::default()
        };
        let emb = train_node2vec(g, &n2v, 45);
        let cfg = ModelConfig {
            embedding_mode: mode,
            ..ModelConfig::paper_default(dim)
        };
        PathRankModel::new(g.vertex_count(), Some(emb), cfg)
    }

    #[test]
    fn prepare_samples_flattens_groups() {
        let (g, groups) = tiny_setup();
        let total: usize = groups.iter().map(TrainingGroup::len).sum();
        let samples = prepare_samples(&g, &groups, false);
        assert_eq!(samples.len(), total);
        assert!(samples.iter().all(|s| s.aux.is_none()));
        assert!(samples.iter().all(|s| (0.0..=1.0).contains(&s.score)));
        assert!(samples.iter().all(|s| s.vertices.len() >= 2));
    }

    #[test]
    fn prepare_samples_multi_task_ratios_in_unit_range() {
        let (g, groups) = tiny_setup();
        let samples = prepare_samples(&g, &groups, true);
        for s in &samples {
            let (lr, tr) = s.aux.expect("multi-task samples carry aux targets");
            assert!((0.0..=1.0 + 1e-6).contains(&(lr as f64)), "len ratio {lr}");
            assert!((0.0..=1.0 + 1e-6).contains(&(tr as f64)), "time ratio {tr}");
        }
        // The best candidate of some group achieves ratio 1.
        assert!(samples.iter().any(|s| s.aux.unwrap().0 > 0.999));
    }

    #[test]
    fn training_reduces_loss() {
        let (g, groups) = tiny_setup();
        let samples = prepare_samples(&g, &groups, false);
        let mut model = tiny_model(&g, 16, EmbeddingMode::Trainable);
        let cfg = TrainConfig {
            epochs: 12,
            lr: 5e-3,
            threads: 1,
            ..Default::default()
        };
        let report = train(&mut model, &samples, &cfg);
        assert_eq!(report.epoch_losses.len(), 12);
        assert_eq!(report.samples, samples.len());
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(
            last < first * 0.85,
            "training must reduce loss (first {first:.4}, last {last:.4})"
        );
    }

    #[test]
    fn parallel_training_matches_sequential() {
        let (g, groups) = tiny_setup();
        let samples = prepare_samples(&g, &groups, false);
        let cfg1 = TrainConfig {
            epochs: 2,
            threads: 1,
            ..Default::default()
        };
        let cfg2 = TrainConfig {
            epochs: 2,
            threads: 2,
            ..Default::default()
        };
        let mut m1 = tiny_model(&g, 8, EmbeddingMode::Trainable);
        let mut m2 = tiny_model(&g, 8, EmbeddingMode::Trainable);
        let r1 = train(&mut m1, &samples, &cfg1);
        let r2 = train(&mut m2, &samples, &cfg2);
        // Gradient merging reorders float additions across threads, so
        // require near-equality rather than bit-equality.
        for (a, b) in r1.epoch_losses.iter().zip(r2.epoch_losses.iter()) {
            assert!((a - b).abs() < 1e-3, "losses diverged: {a} vs {b}");
        }
        // Predictions should agree closely too.
        let probe: Vec<u32> = samples[0].vertices.clone();
        let (p1, p2) = (m1.score_path(&probe), m2.score_path(&probe));
        assert!(
            (p1 - p2).abs() < 1e-2,
            "parallel and sequential models diverged"
        );
    }

    #[test]
    fn frozen_embedding_is_untouched_by_training() {
        let (g, groups) = tiny_setup();
        let samples = prepare_samples(&g, &groups, false);
        let mut model = tiny_model(&g, 8, EmbeddingMode::FrozenPretrained);
        let before = model.store.value(model_embedding_id(&model)).clone();
        let cfg = TrainConfig {
            epochs: 2,
            ..Default::default()
        };
        train(&mut model, &samples, &cfg);
        let after = model.store.value(model_embedding_id(&model));
        assert_eq!(&before, after, "PR-A1 must not update the embedding");
    }

    /// The embedding is always parameter 0 (registered first).
    fn model_embedding_id(_m: &PathRankModel) -> pathrank_nn::params::ParamId {
        pathrank_nn::params::ParamId(0)
    }

    #[test]
    #[should_panic(expected = "no training samples")]
    fn rejects_empty_training_set() {
        let (g, _) = tiny_setup();
        let mut model = tiny_model(&g, 8, EmbeddingMode::Trainable);
        let _ = train(&mut model, &[], &TrainConfig::default());
    }
}
