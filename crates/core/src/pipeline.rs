//! End-to-end experiment pipeline.
//!
//! A [`Workbench`] owns everything that is *shared* across the
//! configurations of one table: the road network, the simulated fleet, the
//! train/test trajectory split, per-`M` node2vec embeddings and per-strategy
//! candidate groups (all cached). [`Workbench::run`] then trains and
//! evaluates one PathRank configuration.
//!
//! Evaluation protocol: following the paper, each training-data strategy
//! is evaluated on *its own* candidate sets over the held-out test
//! trajectories (the "advanced routing" module of the paper's solution
//! overview serves the same kind of candidates at query time that the
//! model was trained to rank). A fixed D-TkDI test bed is also available
//! for baseline comparisons ([`Workbench::test_groups`]).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use pathrank_embed::node2vec::{train_node2vec, Node2VecConfig};
use pathrank_nn::matrix::Matrix;
use pathrank_obs::{Histogram, MetricsSnapshot, Registry};
use pathrank_spatial::algo::cch::{Cch, CchConfig, CchTopology};
use pathrank_spatial::algo::ch::{ChConfig, ContractionHierarchy};
use pathrank_spatial::algo::engine::{EngineObs, QueryEngine};
use pathrank_spatial::algo::landmarks::{LandmarkConfig, LandmarkMetric, LandmarkTable};
use pathrank_spatial::frozen::FrozenGraph;
use pathrank_spatial::generators::{region_network, RegionConfig};
use pathrank_spatial::graph::{EdgeId, Graph};
use pathrank_spatial::path::Path;
use pathrank_traj::dataset::TrajectoryDataset;
use pathrank_traj::mapmatch::MapMatchConfig;
use pathrank_traj::simulator::{simulate_fleet, SimulationConfig};

use crate::candidates::{generate_groups_with_backends, CandidateConfig, Strategy, TrainingGroup};
use crate::eval::{evaluate_model, EvalResult};
use crate::model::{EmbeddingMode, ModelConfig, PathRankModel};
use crate::trainer::{prepare_samples, train, TrainConfig, TrainReport};

/// Everything the experiment environment needs (network, fleet, splits).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Synthetic region parameters (the North Jutland stand-in).
    pub region: RegionConfig,
    /// Fleet simulation parameters.
    pub sim: SimulationConfig,
    /// node2vec parameters (`dim` is overridden per requested `M`).
    pub n2v: Node2VecConfig,
    /// Drop trajectories with fewer edges than this.
    pub min_hops: usize,
    /// Drop trajectories with more edges than this (bounds BPTT length).
    pub max_hops: usize,
    /// Fraction of trajectories used for training.
    pub train_frac: f64,
    /// Recover trajectory paths by HMM map matching (full paper pipeline)
    /// instead of reading the simulator's ground truth (fast path).
    pub use_map_matching: bool,
    /// Worker threads for candidate generation and training.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Milliseconds-scale configuration for unit tests.
    pub fn small_test() -> Self {
        ExperimentConfig {
            region: RegionConfig::small_test(),
            sim: SimulationConfig::small_test(),
            n2v: Node2VecConfig {
                walks_per_vertex: 3,
                walk_length: 12,
                epochs: 1,
                ..Default::default()
            },
            min_hops: 3,
            max_hops: 60,
            train_frac: 0.75,
            use_map_matching: false,
            threads: 2,
            seed: 2020,
        }
    }

    /// The laptop-scale mirror of the paper's setup: a ~3k-vertex region,
    /// a fleet of drivers with hidden preferences, minutes-scale training.
    pub fn paper_scale() -> Self {
        ExperimentConfig {
            region: RegionConfig::paper_scale(),
            sim: SimulationConfig {
                n_vehicles: 50,
                trips_per_vehicle: 5,
                min_trip_euclid_m: 800.0,
                max_trip_euclid_m: 6_000.0,
                ..SimulationConfig::paper_scale()
            },
            n2v: Node2VecConfig::default(),
            min_hops: 5,
            max_hops: 60,
            train_frac: 0.8,
            use_map_matching: false,
            threads: 2,
            seed: 2020,
        }
    }
}

/// Outcome of one configuration run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Test-set metrics.
    pub eval: EvalResult,
    /// Training diagnostics.
    pub report: TrainReport,
    /// Number of training ranking groups.
    pub train_groups: usize,
    /// Number of test ranking groups.
    pub test_groups: usize,
    /// Wall-clock seconds for train + eval (excludes cached preprocessing).
    pub seconds: f64,
}

/// Shared experiment state with caching. See the module docs.
pub struct Workbench {
    /// The road network.
    pub graph: Graph,
    /// Training trajectory paths.
    pub train_paths: Vec<Path>,
    /// Held-out test trajectory paths.
    pub test_paths: Vec<Path>,
    cfg: ExperimentConfig,
    embeddings: HashMap<usize, Matrix>,
    train_group_cache: HashMap<String, Vec<TrainingGroup>>,
    test_group_cache: HashMap<String, Vec<TrainingGroup>>,
    /// ALT landmark table for serving-time engines, built on first use.
    landmarks: OnceLock<Arc<LandmarkTable>>,
    /// TravelTime-metric landmark table for fastest-path serving, built
    /// on first use.
    tt_landmarks: OnceLock<Arc<LandmarkTable>>,
    /// Contraction hierarchy (length metric), built on first use and
    /// shared by every CH-backed engine.
    ch: OnceLock<Arc<ContractionHierarchy>>,
    /// TravelTime-metric contraction hierarchy for fastest-path serving,
    /// built on first use (the length CH cannot cover
    /// `CostModel::TravelTime` queries).
    tt_ch: OnceLock<Arc<ContractionHierarchy>>,
    /// Metric-independent CCH topology (order + shortcut structure),
    /// built on first use. Survives weight mutations: only the cheap
    /// customization below re-runs when speeds change.
    cch_topo: OnceLock<Arc<CchTopology>>,
    /// Customized CCH per metric, keyed by the graph's weights epoch at
    /// customization time. A cached entry whose epoch no longer matches
    /// the graph is re-customized, never served stale.
    cch_cache: Mutex<HashMap<LandmarkMetric, Arc<Cch>>>,
    /// Cache-compact frozen serving form of the graph, built on first
    /// use and mounted into every serving engine. Plain/ALT searches
    /// relax its merged single-array CSR instead of the builder graph;
    /// the engine's weights-epoch gate falls back automatically after a
    /// live weight mutation.
    frozen: OnceLock<Arc<FrozenGraph>>,
    /// Sparse changed-edge log across [`Workbench::set_edge_speeds`]
    /// calls: the contiguous weights-epoch span it covers plus the
    /// changed `(edge, speed)` entries in application order. Lets
    /// [`Workbench::cch_index`] catch a trailing customization up with
    /// a partial `Cch::apply_delta` pass instead of re-relaxing every
    /// triangle. Direct `graph.set_edge_speeds` mutations bypass the
    /// log; the next refresh then simply runs full.
    speed_deltas: Mutex<SpeedDeltaLog>,
    /// Metrics registry every engine this workbench hands out records
    /// into (`pathrank_engine_*`), plus CCH customization timings
    /// (`pathrank_cch_*`) and — when map matching ran — the matcher's
    /// probe-cache counters (`pathrank_match_*`). Swap in
    /// [`Registry::disabled`] via [`Workbench::with_graph_and_registry`]
    /// to turn the whole layer into no-op sinks.
    registry: Registry,
}

/// See [`Workbench::set_edge_speeds`]: the changed-edge entries covering
/// weights epochs `(from_epoch, to_epoch]`, later entries winning.
#[derive(Debug, Default)]
struct SpeedDeltaLog {
    from_epoch: u64,
    to_epoch: u64,
    changes: Vec<(EdgeId, f64)>,
}

impl Workbench {
    /// Builds the shared environment: network → fleet → trajectory paths →
    /// train/test split. The network comes from the synthetic region
    /// generator; see [`Workbench::with_graph`] /
    /// [`Workbench::from_graph_file`] for real (imported) networks.
    pub fn new(cfg: ExperimentConfig) -> Self {
        let graph = region_network(&cfg.region, cfg.seed);
        Self::with_graph(graph, cfg)
    }

    /// Builds the shared environment on an arbitrary road network —
    /// typically one imported from OSM — instead of the synthetic
    /// generator (`cfg.region` is ignored). The fleet simulation,
    /// map-matching, candidate and training pipelines run unchanged; the
    /// graph should be strongly connected (the OSM importer's default)
    /// so every simulated trip is routable.
    pub fn with_graph(graph: Graph, cfg: ExperimentConfig) -> Self {
        Self::with_graph_and_registry(graph, cfg, Registry::new())
    }

    /// Like [`Workbench::with_graph`], but recording into a
    /// caller-supplied metrics registry — [`Registry::disabled`] is the
    /// obs-off escape hatch, a shared live registry lets several
    /// workbenches (or a surrounding server) scrape one snapshot.
    pub fn with_graph_and_registry(
        graph: Graph,
        cfg: ExperimentConfig,
        registry: Registry,
    ) -> Self {
        let trips = simulate_fleet(&graph, &cfg.sim, cfg.seed.wrapping_add(1));
        let dataset = if cfg.use_map_matching {
            let (dataset, match_stats) = TrajectoryDataset::from_map_matching_with_stats(
                &graph,
                &trips,
                &MapMatchConfig::default(),
            );
            match_stats.record_into(&registry);
            dataset
        } else {
            TrajectoryDataset::from_true_paths(&trips)
        };
        let mut dataset = dataset.filter_min_hops(cfg.min_hops);
        dataset.paths.retain(|p| p.len() <= cfg.max_hops);
        let (train_paths, test_paths) = dataset.split(cfg.train_frac, cfg.seed.wrapping_add(2));
        Workbench {
            graph,
            train_paths,
            test_paths,
            cfg,
            embeddings: HashMap::new(),
            train_group_cache: HashMap::new(),
            test_group_cache: HashMap::new(),
            landmarks: OnceLock::new(),
            tt_landmarks: OnceLock::new(),
            ch: OnceLock::new(),
            tt_ch: OnceLock::new(),
            cch_topo: OnceLock::new(),
            cch_cache: Mutex::new(HashMap::new()),
            frozen: OnceLock::new(),
            speed_deltas: Mutex::new(SpeedDeltaLog::default()),
            registry,
        }
    }

    /// Builds the shared environment from a road-network file: a raw OSM
    /// XML extract, a persisted `pathrank-osm-graph v1` import, or a
    /// plain `pathrank-graph v1` file — whatever
    /// [`pathrank_spatial::io::load_graph_auto`] recognises. This is the
    /// entry point behind every experiment binary's `--graph` flag: the
    /// whole pipeline (ALT/CH indexes, candidate generation, map
    /// matching, training) runs on the real network unchanged.
    pub fn from_graph_file(
        path: impl AsRef<std::path::Path>,
        cfg: ExperimentConfig,
    ) -> Result<Self, pathrank_spatial::SpatialError> {
        let loaded = pathrank_spatial::io::load_graph_auto(path.as_ref())?;
        Ok(Self::with_graph(loaded.graph, cfg))
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// The workbench's metrics registry (see the `registry` field docs
    /// for the families it carries).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A scrape of everything the workbench's engines and customization
    /// paths have recorded so far.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// A reusable routing engine over this workbench's network, for
    /// callers issuing ad-hoc queries (serving-time candidate generation,
    /// diagnostics). The preprocessing stages already hold their own:
    /// candidate generation runs one engine per worker thread and map
    /// matching reuses one across all traces. Every engine handed out
    /// here (and by the ALT/CH/CCH variants layered on top) records its
    /// query and search-work counters into [`Workbench::registry`].
    pub fn query_engine(&self) -> QueryEngine<'_> {
        QueryEngine::new(&self.graph).with_obs(EngineObs::new(&self.registry))
    }

    /// Handle for the CCH customization-duration histogram, split by
    /// `kind=full|sparse` — same family the serving layer records, so
    /// dashboards need one query.
    fn cch_customize_ns(&self, kind: &str) -> Histogram {
        self.registry.histogram(
            "pathrank_cch_customize_ns",
            "CCH customization wall time in nanoseconds, by update kind",
            &[("kind", kind)],
        )
    }

    /// The workbench's shared frozen serving graph (see
    /// [`pathrank_spatial::frozen`]), built once and cached. Search
    /// results are bit-identical to the builder graph's — freezing only
    /// compacts the memory layout a relaxation loop walks — so every
    /// serving engine mounts it unconditionally.
    pub fn frozen_graph(&self) -> &Arc<FrozenGraph> {
        self.frozen
            .get_or_init(|| Arc::new(FrozenGraph::freeze(&self.graph)))
    }

    /// The workbench's shared ALT landmark table (length metric — what
    /// candidate serving routes on), built once and cached.
    pub fn landmark_table(&self) -> &Arc<LandmarkTable> {
        self.landmarks.get_or_init(|| {
            Arc::new(LandmarkTable::build(
                &self.graph,
                LandmarkMetric::Length,
                &LandmarkConfig {
                    threads: self.cfg.threads.max(1),
                    ..LandmarkConfig::default()
                },
            ))
        })
    }

    /// Like [`Workbench::query_engine`], but landmark-directed: the
    /// engine serves the same exact answers with tighter searches —
    /// the configuration for query-heavy serving paths.
    pub fn alt_query_engine(&self) -> QueryEngine<'_> {
        self.query_engine()
            .with_landmarks(Arc::clone(self.landmark_table()))
            .with_frozen(Arc::clone(self.frozen_graph()))
    }

    /// The workbench's shared TravelTime-metric landmark table, for
    /// fastest-path serving (same build API, different metric — the
    /// length table cannot cover `CostModel::TravelTime` queries).
    pub fn travel_time_landmark_table(&self) -> &Arc<LandmarkTable> {
        self.tt_landmarks.get_or_init(|| {
            Arc::new(LandmarkTable::build(
                &self.graph,
                LandmarkMetric::TravelTime,
                &LandmarkConfig {
                    threads: self.cfg.threads.max(1),
                    ..LandmarkConfig::default()
                },
            ))
        })
    }

    /// An engine for fastest-path (TravelTime) serving: the TravelTime
    /// contraction hierarchy for unconstrained point-to-point queries
    /// and batched distance tables, TravelTime ALT landmarks for
    /// everything constrained. Length queries on this engine fall back
    /// to plain searches (the metric gate is per query).
    pub fn fastest_query_engine(&self) -> QueryEngine<'_> {
        self.query_engine()
            .with_landmarks(Arc::clone(self.travel_time_landmark_table()))
            .with_ch(Arc::clone(self.travel_time_ch_index()))
            .with_frozen(Arc::clone(self.frozen_graph()))
    }

    /// The workbench's shared contraction hierarchy (length metric),
    /// built once and cached next to the landmark table.
    pub fn ch_index(&self) -> &Arc<ContractionHierarchy> {
        self.ch.get_or_init(|| {
            Arc::new(ContractionHierarchy::build(
                &self.graph,
                LandmarkMetric::Length,
                &ChConfig {
                    threads: self.cfg.threads.max(1),
                    ..ChConfig::default()
                },
            ))
        })
    }

    /// The workbench's shared TravelTime-metric contraction hierarchy,
    /// so fastest-path serving runs on a hierarchy instead of falling
    /// back to ALT (same build API, different metric). Like the length
    /// CH it round-trips through `spatial::io::write_ch`/`read_ch`, so
    /// servers persist it next to the graph and skip the build on
    /// restart.
    pub fn travel_time_ch_index(&self) -> &Arc<ContractionHierarchy> {
        self.tt_ch.get_or_init(|| {
            Arc::new(ContractionHierarchy::build(
                &self.graph,
                LandmarkMetric::TravelTime,
                &ChConfig {
                    threads: self.cfg.threads.max(1),
                    ..ChConfig::default()
                },
            ))
        })
    }

    /// The strongest serving engine: ALT landmarks *and* the contraction
    /// hierarchy attached. Unconstrained point-to-point queries dispatch
    /// to the CH, constrained (spur) searches to ALT, everything else to
    /// plain searches — all exact.
    pub fn ch_query_engine(&self) -> QueryEngine<'_> {
        self.alt_query_engine().with_ch(Arc::clone(self.ch_index()))
    }

    /// The workbench's shared metric-independent CCH topology
    /// (contraction order plus shortcut structure), built once and kept
    /// across live-weight changes: mutating edge speeds only invalidates
    /// the customized weights ([`Workbench::cch_index`]), never this.
    pub fn cch_topology(&self) -> &Arc<CchTopology> {
        self.cch_topo.get_or_init(|| {
            Arc::new(CchTopology::build(
                &self.graph,
                &CchConfig {
                    threads: self.cfg.threads.max(1),
                },
            ))
        })
    }

    /// Applies a batch of live speed updates through the workbench and
    /// records the changed-edge delta, so the next
    /// [`Workbench::cch_index`] / [`Workbench::live_query_engine`] call
    /// can catch the cached customization up with a sparse partial pass
    /// (`Cch::apply_delta`) instead of re-relaxing every triangle.
    /// Returns the delta
    /// ([`Graph::set_edge_speeds`](pathrank_spatial::graph::Graph::set_edge_speeds)'s
    /// contract): empty means every update was a redundant echo, the
    /// weights epoch stayed put, and no index was invalidated.
    pub fn set_edge_speeds(&mut self, updates: &[(EdgeId, f64)]) -> Vec<(EdgeId, f64)> {
        let before = self.graph.weights_epoch();
        let delta = self.graph.set_edge_speeds(updates);
        if !delta.is_empty() {
            let log = self
                .speed_deltas
                .get_mut()
                .expect("speed delta log poisoned");
            if log.to_epoch != before {
                // A direct graph mutation bypassed the log; restart
                // coverage at the span we can vouch for.
                log.from_epoch = before;
                log.changes.clear();
            }
            log.changes.extend_from_slice(&delta);
            log.to_epoch = self.graph.weights_epoch();
            if log.changes.len() > self.graph.edge_count() {
                // Past a full graph's worth of entries the partial pass
                // stops being cheaper; drop coverage and let the next
                // refresh run full (which also resets this growth).
                log.from_epoch = log.to_epoch;
                log.changes.clear();
            }
        }
        delta
    }

    /// A CCH customized for `metric` at the graph's *current* weights
    /// epoch. Customization (milliseconds) runs on first use per metric
    /// and again after every weight mutation; a cached index whose epoch
    /// trails the graph is replaced, so this can never serve pre-mutation
    /// weights. Callers that perturb speeds (traffic feeds, what-if
    /// simulation) just call this again after
    /// [`Workbench::set_edge_speeds`] — when the sparse delta log covers
    /// the gap, the refresh re-relaxes only the triangles the delta
    /// touched (`Cch::apply_delta`, bit-identical to the full pass) and
    /// costs microseconds instead of milliseconds.
    pub fn cch_index(&self, metric: LandmarkMetric) -> Arc<Cch> {
        let current = self.graph.weights_epoch();
        let mut cache = self.cch_cache.lock().expect("cch cache poisoned");
        if let Some(cch) = cache.get(&metric) {
            if cch.weights_epoch() == current {
                return Arc::clone(cch);
            }
            let log = self.speed_deltas.lock().expect("speed delta log poisoned");
            if log.from_epoch <= cch.weights_epoch() && log.to_epoch == current {
                // The log may start before the cached epoch; the extra
                // entries recompute to their current values and stop
                // immediately, so a superset is always safe.
                let started = Instant::now();
                let mut fresh = (**cch).clone();
                let recomputed = fresh.apply_delta(&self.graph, &log.changes);
                self.cch_customize_ns("sparse")
                    .record_duration(started.elapsed());
                self.registry
                    .histogram(
                        "pathrank_cch_delta_edges",
                        "Edges named by each sparse live-weight delta",
                        &[],
                    )
                    .record(log.changes.len() as u64);
                self.registry
                    .histogram(
                        "pathrank_cch_recomputed_arcs",
                        "Shortcut arcs re-relaxed by each sparse customization (triangle closure size)",
                        &[],
                    )
                    .record(recomputed as u64);
                drop(log);
                let fresh = Arc::new(fresh);
                cache.insert(metric, Arc::clone(&fresh));
                return fresh;
            }
        }
        let topo = self.cch_topology();
        let started = Instant::now();
        let cch = Arc::new(topo.customize(&self.graph, &metric.cost_model()));
        self.cch_customize_ns("full")
            .record_duration(started.elapsed());
        cache.insert(metric, Arc::clone(&cch));
        cch
    }

    /// An engine for live-traffic serving: fastest-path queries run on a
    /// TravelTime CCH customized at the current weights epoch, so the
    /// answers always reflect the latest speed mutations. Re-request the
    /// engine after a weight change — re-customizing costs milliseconds,
    /// not the full-hierarchy rebuild [`Workbench::fastest_query_engine`]
    /// would need.
    pub fn live_query_engine(&self) -> QueryEngine<'_> {
        self.query_engine()
            .with_cch(self.cch_index(LandmarkMetric::TravelTime))
            .with_frozen(Arc::clone(self.frozen_graph()))
    }

    /// The node2vec embedding for dimensionality `dim` (cached).
    pub fn embedding(&mut self, dim: usize) -> Matrix {
        if let Some(m) = self.embeddings.get(&dim) {
            return m.clone();
        }
        let n2v = Node2VecConfig {
            dim,
            ..self.cfg.n2v.clone()
        };
        let m = train_node2vec(&self.graph, &n2v, self.cfg.seed.wrapping_add(3));
        self.embeddings.insert(dim, m.clone());
        m
    }

    fn group_key(ccfg: &CandidateConfig) -> String {
        format!(
            "{:?}|k{}|t{:.4}|s{}|inc{}",
            ccfg.strategy, ccfg.k, ccfg.diversity_threshold, ccfg.max_scan, ccfg.include_trajectory
        )
    }

    /// Labelled training groups for a candidate configuration (cached).
    pub fn train_groups(&mut self, ccfg: &CandidateConfig) -> Vec<TrainingGroup> {
        let key = Self::group_key(ccfg);
        if let Some(gs) = self.train_group_cache.get(&key) {
            return gs.clone();
        }
        let gs = generate_groups_with_backends(
            &self.graph,
            &self.train_paths,
            ccfg,
            self.cfg.threads,
            Some(Arc::clone(self.landmark_table())),
            Some(Arc::clone(self.ch_index())),
        );
        self.train_group_cache.insert(key, gs.clone());
        gs
    }

    /// Labelled test groups generated with the D-TkDI strategy at
    /// candidate-set size `k` (a convenient fixed test bed for baselines
    /// and cross-strategy comparisons).
    pub fn test_groups(&mut self, k: usize) -> Vec<TrainingGroup> {
        let ccfg = CandidateConfig {
            k,
            ..CandidateConfig::paper_default(Strategy::DTkDI)
        };
        self.test_groups_for(&ccfg)
    }

    /// Labelled test groups generated with an arbitrary candidate
    /// configuration. [`Workbench::run`] uses the *training* configuration
    /// here, matching the paper's protocol: each strategy is evaluated on
    /// the candidate sets it would serve at query time.
    pub fn test_groups_for(&mut self, ccfg: &CandidateConfig) -> Vec<TrainingGroup> {
        let key = Self::group_key(ccfg);
        if let Some(gs) = self.test_group_cache.get(&key) {
            return gs.clone();
        }
        let gs = generate_groups_with_backends(
            &self.graph,
            &self.test_paths,
            ccfg,
            self.cfg.threads,
            Some(Arc::clone(self.landmark_table())),
            Some(Arc::clone(self.ch_index())),
        );
        self.test_group_cache.insert(key, gs.clone());
        gs
    }

    /// Trains and evaluates one PathRank configuration.
    pub fn run(
        &mut self,
        mcfg: ModelConfig,
        ccfg: CandidateConfig,
        tcfg: TrainConfig,
    ) -> ExperimentResult {
        self.run_with_model(mcfg, ccfg, tcfg).0
    }

    /// Like [`Workbench::run`] but also hands back the trained model.
    pub fn run_with_model(
        &mut self,
        mcfg: ModelConfig,
        ccfg: CandidateConfig,
        tcfg: TrainConfig,
    ) -> (ExperimentResult, PathRankModel) {
        let pretrained = match mcfg.embedding_mode {
            EmbeddingMode::TrainableRandom => None,
            _ => Some(self.embedding(mcfg.dim)),
        };
        let train_groups = self.train_groups(&ccfg);
        let test_groups = self.test_groups_for(&ccfg);

        let start = Instant::now();
        let samples = prepare_samples(&self.graph, &train_groups, mcfg.multi_task_weight > 0.0);
        let mut model = PathRankModel::new(self.graph.vertex_count(), pretrained, mcfg);
        let report = train(&mut model, &samples, &tcfg);
        let eval = evaluate_model(&model, &test_groups);
        let seconds = start.elapsed().as_secs_f64();

        (
            ExperimentResult {
                eval,
                report,
                train_groups: train_groups.len(),
                test_groups: test_groups.len(),
                seconds,
            },
            model,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::Strategy;

    fn quick_train_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 2,
            batch_size: 8,
            threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn workbench_builds_consistent_environment() {
        let wb = Workbench::new(ExperimentConfig::small_test());
        assert!(wb.graph.vertex_count() > 10);
        assert!(!wb.train_paths.is_empty());
        assert!(!wb.test_paths.is_empty());
        // Split proportions roughly respected.
        let total = wb.train_paths.len() + wb.test_paths.len();
        let frac = wb.train_paths.len() as f64 / total as f64;
        assert!((frac - 0.75).abs() < 0.1, "split fraction {frac}");
        // Hop bounds respected.
        for p in wb.train_paths.iter().chain(&wb.test_paths) {
            assert!(p.len() >= 3 && p.len() <= 60);
        }
    }

    #[test]
    fn workbench_query_engine_routes_on_its_network() {
        use pathrank_spatial::graph::{CostModel, VertexId};
        let wb = Workbench::new(ExperimentConfig::small_test());
        let mut engine = wb.query_engine();
        let t = VertexId((wb.graph.vertex_count() - 1) as u32);
        // Trajectory endpoints are routable by construction; so is the
        // engine over interleaved queries.
        let p1 = engine.shortest_path(VertexId(0), t, CostModel::Length);
        let p2 = engine.shortest_path(t, VertexId(0), CostModel::TravelTime);
        assert!(
            p1.is_some() || p2.is_some(),
            "SCC network must route somewhere"
        );
    }

    #[test]
    fn alt_workbench_engine_matches_plain_engine() {
        use pathrank_spatial::graph::{CostModel, VertexId};
        let wb = Workbench::new(ExperimentConfig::small_test());
        // The table is built once and shared by every ALT engine.
        let t1 = Arc::as_ptr(wb.landmark_table());
        let t2 = Arc::as_ptr(wb.landmark_table());
        assert_eq!(t1, t2, "landmark table must be cached");
        let mut plain = wb.query_engine();
        let mut alt = wb.alt_query_engine();
        assert!(alt.uses_alt(CostModel::Length));
        let n = wb.graph.vertex_count() as u32;
        for (s, t) in [(0, n - 1), (n / 2, 1), (n - 1, n / 3)] {
            let (s, t) = (VertexId(s), VertexId(t));
            let a = plain.shortest_path_cost(s, t, CostModel::Length);
            let b = alt.shortest_path_cost(s, t, CostModel::Length);
            assert_eq!(a, b, "{s:?}->{t:?} ALT cost diverged");
        }
    }

    #[test]
    fn ch_workbench_engine_matches_plain_engine() {
        use pathrank_spatial::algo::engine::SearchBackend;
        use pathrank_spatial::graph::{CostModel, VertexId};
        let wb = Workbench::new(ExperimentConfig::small_test());
        // The hierarchy is built once and shared by every CH engine.
        let c1 = Arc::as_ptr(wb.ch_index());
        let c2 = Arc::as_ptr(wb.ch_index());
        assert_eq!(c1, c2, "contraction hierarchy must be cached");
        let mut plain = wb.query_engine();
        let mut fast = wb.ch_query_engine();
        assert_eq!(fast.backend_for(CostModel::Length), SearchBackend::Ch);
        assert_eq!(
            fast.constrained_backend_for(CostModel::Length),
            SearchBackend::Alt,
            "spur searches must stay off the CH"
        );
        let n = wb.graph.vertex_count() as u32;
        for (s, t) in [(0, n - 1), (n / 2, 1), (n - 1, n / 3)] {
            let (s, t) = (VertexId(s), VertexId(t));
            let a = plain.shortest_path_cost(s, t, CostModel::Length);
            let b = fast.shortest_path_cost(s, t, CostModel::Length);
            assert_eq!(a, b, "{s:?}->{t:?} CH cost diverged");
        }
    }

    #[test]
    fn live_workbench_engine_recustomizes_after_traffic() {
        use pathrank_spatial::algo::engine::SearchBackend;
        use pathrank_spatial::algo::landmarks::LandmarkMetric;
        use pathrank_spatial::graph::{CostModel, EdgeId, VertexId};
        let mut wb = Workbench::new(ExperimentConfig::small_test());
        // The customized CCH is cached while the weights stand still...
        let c1 = Arc::as_ptr(&wb.cch_index(LandmarkMetric::TravelTime));
        let c2 = Arc::as_ptr(&wb.cch_index(LandmarkMetric::TravelTime));
        assert_eq!(c1, c2, "customized CCH must be cached within an epoch");
        // ...and the topology survives weight mutations entirely.
        let topo = Arc::as_ptr(wb.cch_topology());
        // Pre-mutation indexes built against epoch 0.
        wb.travel_time_ch_index();
        wb.travel_time_landmark_table();
        // Traffic arrives: every third edge slows to a crawl.
        let updates: Vec<(EdgeId, f64)> = (0..wb.graph.edge_count())
            .step_by(3)
            .map(|e| (EdgeId(e as u32), 7.2))
            .collect();
        wb.graph.set_edge_speeds(&updates);
        // The stale TravelTime CH/ALT indexes are epoch-gated out: the
        // fastest engine silently falls back to exact plain searches
        // rather than serving pre-mutation weights.
        let stale = wb.fastest_query_engine();
        assert_eq!(
            stale.backend_for(CostModel::TravelTime),
            SearchBackend::Plain,
            "indexes built before a weight mutation must not serve"
        );
        // cch_index re-customizes on the shared topology instead.
        let fresh = wb.cch_index(LandmarkMetric::TravelTime);
        assert_ne!(c1, Arc::as_ptr(&fresh), "stale customization reused");
        assert_eq!(fresh.weights_epoch(), wb.graph.weights_epoch());
        assert_eq!(topo, Arc::as_ptr(wb.cch_topology()), "topology rebuilt");
        // And the live engine answers match plain Dijkstra on the
        // perturbed graph exactly.
        let mut live = wb.live_query_engine();
        assert_eq!(live.backend_for(CostModel::TravelTime), SearchBackend::Cch);
        let mut plain = wb.query_engine();
        let n = wb.graph.vertex_count() as u32;
        for (s, t) in [(0, n - 1), (n / 2, 1), (n - 1, n / 3)] {
            let (s, t) = (VertexId(s), VertexId(t));
            let a = plain.shortest_path_cost(s, t, CostModel::TravelTime);
            let b = live.shortest_path_cost(s, t, CostModel::TravelTime);
            assert_eq!(a, b, "{s:?}->{t:?} live CCH cost diverged");
        }
    }

    #[test]
    fn sparse_speed_deltas_refresh_the_cch_partially_and_exactly() {
        use pathrank_spatial::algo::landmarks::LandmarkMetric;
        use pathrank_spatial::graph::{CostModel, EdgeId, VertexId};
        let mut wb = Workbench::new(ExperimentConfig::small_test());
        let primed = wb.cch_index(LandmarkMetric::TravelTime);
        assert_eq!(primed.weights_epoch(), 0);

        // A redundant echo must not disturb anything: empty delta, same
        // epoch, same cached Arc.
        let echo = wb.graph.edge(EdgeId(0)).attrs.speed_kmh;
        assert!(wb.set_edge_speeds(&[(EdgeId(0), echo)]).is_empty());
        assert_eq!(wb.graph.weights_epoch(), 0);
        assert_eq!(
            Arc::as_ptr(&primed),
            Arc::as_ptr(&wb.cch_index(LandmarkMetric::TravelTime))
        );

        // Two chained sparse batches through the workbench entry point;
        // the delta log spans both, so one partial pass catches up.
        let sparse: Vec<(EdgeId, f64)> = (0..wb.graph.edge_count())
            .step_by(17)
            .map(|e| (EdgeId(e as u32), 6.5))
            .collect();
        assert_eq!(wb.set_edge_speeds(&sparse).len(), sparse.len());
        let more = [(EdgeId(1), 88.0), (EdgeId(3), 12.0)];
        assert!(!wb.set_edge_speeds(&more).is_empty());
        assert_eq!(wb.graph.weights_epoch(), 2);

        let fresh = wb.cch_index(LandmarkMetric::TravelTime);
        assert_ne!(Arc::as_ptr(&primed), Arc::as_ptr(&fresh));
        assert_eq!(fresh.weights_epoch(), wb.graph.weights_epoch());
        // The partially refreshed CCH answers bit-identically to plain
        // Dijkstra on the mutated graph.
        let mut live = wb.live_query_engine();
        let mut plain = wb.query_engine();
        let n = wb.graph.vertex_count() as u32;
        for (s, t) in [(0, n - 1), (n / 2, 1), (n - 1, n / 3), (1, n / 2)] {
            let (s, t) = (VertexId(s), VertexId(t));
            let a = plain.shortest_path_cost(s, t, CostModel::TravelTime);
            let b = live.shortest_path_cost(s, t, CostModel::TravelTime);
            match (a, b) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "{s:?}->{t:?} diverged")
                }
                (a, b) => assert_eq!(a, b, "{s:?}->{t:?} reachability diverged"),
            }
        }

        // A direct graph mutation bypasses the log: the next refresh
        // must fall back to a full customization, not trust stale
        // coverage — and still land on the right epoch.
        wb.graph.set_edge_speeds(&[(EdgeId(2), 31.0)]);
        let full = wb.cch_index(LandmarkMetric::TravelTime);
        assert_eq!(full.weights_epoch(), wb.graph.weights_epoch());
        let mut live = wb.live_query_engine();
        let mut plain = wb.query_engine();
        let (s, t) = (VertexId(0), VertexId(n - 1));
        assert_eq!(
            plain.shortest_path_cost(s, t, CostModel::TravelTime),
            live.shortest_path_cost(s, t, CostModel::TravelTime)
        );
    }

    #[test]
    fn travel_time_workbench_engine_serves_fastest_paths() {
        use pathrank_spatial::algo::engine::SearchBackend;
        use pathrank_spatial::algo::landmarks::LandmarkMetric;
        use pathrank_spatial::graph::{CostModel, VertexId};
        let wb = Workbench::new(ExperimentConfig::small_test());
        let t1 = Arc::as_ptr(wb.travel_time_landmark_table());
        let t2 = Arc::as_ptr(wb.travel_time_landmark_table());
        assert_eq!(t1, t2, "TravelTime table must be cached");
        let c1 = Arc::as_ptr(wb.travel_time_ch_index());
        let c2 = Arc::as_ptr(wb.travel_time_ch_index());
        assert_eq!(c1, c2, "TravelTime CH must be cached");
        assert_eq!(
            wb.travel_time_ch_index().metric(),
            LandmarkMetric::TravelTime
        );
        assert_ne!(
            Arc::as_ptr(wb.ch_index()),
            Arc::as_ptr(wb.travel_time_ch_index()),
            "the two metrics get distinct hierarchies"
        );
        let mut plain = wb.query_engine();
        let mut fastest = wb.fastest_query_engine();
        assert_eq!(
            fastest.backend_for(CostModel::TravelTime),
            SearchBackend::Ch,
            "fastest-path serving now runs on the TravelTime CH"
        );
        assert_eq!(
            fastest.constrained_backend_for(CostModel::TravelTime),
            SearchBackend::Alt,
            "constrained fastest-path searches stay on ALT"
        );
        assert_eq!(
            fastest.backend_for(CostModel::Length),
            SearchBackend::Plain,
            "neither TravelTime index may cover length queries"
        );
        let n = wb.graph.vertex_count() as u32;
        for (s, t) in [(0, n - 1), (n / 3, n / 2)] {
            let (s, t) = (VertexId(s), VertexId(t));
            let a = plain.shortest_path_cost(s, t, CostModel::TravelTime);
            let b = fastest.shortest_path_cost(s, t, CostModel::TravelTime);
            assert_eq!(a, b, "{s:?}->{t:?} fastest-path cost diverged");
        }
        // The TravelTime hierarchy persists through the same io layer as
        // the length one: a reloaded index serves identical answers.
        let reloaded = pathrank_spatial::io::ch_from_str(&pathrank_spatial::io::ch_to_string(
            wb.travel_time_ch_index(),
        ))
        .expect("TravelTime CH must round-trip");
        let mut reloaded_engine = wb.query_engine().with_ch(Arc::new(reloaded));
        for (s, t) in [(0, n - 1), (n / 3, n / 2)] {
            let (s, t) = (VertexId(s), VertexId(t));
            let a = fastest.shortest_path_cost(s, t, CostModel::TravelTime);
            let b = reloaded_engine.shortest_path_cost(s, t, CostModel::TravelTime);
            assert_eq!(a, b, "{s:?}->{t:?} reloaded TT CH diverged");
        }
    }

    #[test]
    fn frozen_graph_is_cached_and_serves_bit_identical_answers() {
        use pathrank_spatial::graph::{CostModel, VertexId};
        let mut wb = Workbench::new(ExperimentConfig::small_test());
        // Built once, shared by every serving engine.
        let f1 = Arc::as_ptr(wb.frozen_graph());
        let f2 = Arc::as_ptr(wb.frozen_graph());
        assert_eq!(f1, f2, "frozen graph must be cached");
        let mut plain = wb.query_engine();
        let mut alt = wb.alt_query_engine();
        assert!(
            alt.uses_frozen(),
            "serving engines must mount the frozen CSR"
        );
        assert!(!plain.uses_frozen(), "the baseline engine must not");
        let n = wb.graph.vertex_count() as u32;
        for (s, t) in [(0, n - 1), (n / 2, 1), (n - 1, n / 3)] {
            let (s, t) = (VertexId(s), VertexId(t));
            for cost in [CostModel::Length, CostModel::TravelTime] {
                let a = plain.shortest_path_cost(s, t, cost);
                let b = alt.shortest_path_cost(s, t, cost);
                assert_eq!(
                    a.map(f64::to_bits),
                    b.map(f64::to_bits),
                    "{s:?}->{t:?} frozen cost diverged"
                );
            }
        }
        // A live weight mutation epoch-gates the frozen layout out; the
        // engines keep answering (on the builder graph) exactly.
        let updates: Vec<(pathrank_spatial::graph::EdgeId, f64)> = (0..wb.graph.edge_count())
            .step_by(5)
            .map(|e| (pathrank_spatial::graph::EdgeId(e as u32), 11.0))
            .collect();
        wb.graph.set_edge_speeds(&updates);
        let mut after = wb.alt_query_engine();
        assert!(
            !after.uses_frozen(),
            "stale frozen layout must be gated out"
        );
        let mut plain_after = wb.query_engine();
        let (s, t) = (VertexId(0), VertexId(n - 1));
        assert_eq!(
            plain_after.shortest_path_cost(s, t, CostModel::TravelTime),
            after.shortest_path_cost(s, t, CostModel::TravelTime)
        );
    }

    #[test]
    fn obs_workbench_registry_collects_engine_cch_and_match_series() {
        use pathrank_spatial::algo::landmarks::LandmarkMetric;
        use pathrank_spatial::graph::{CostModel, EdgeId, VertexId};
        let mut cfg = ExperimentConfig::small_test();
        cfg.use_map_matching = true;
        let mut wb = Workbench::new(cfg);
        // Map matching already ran inside the constructor.
        let snap = wb.metrics_snapshot();
        assert!(
            snap.counter_total("pathrank_match_sp_probes_total", &[]) > 0,
            "matcher probe counters must reach the registry"
        );
        // Engine queries and search work are recorded per backend.
        let mut engine = wb.ch_query_engine();
        let n = wb.graph.vertex_count() as u32;
        engine.shortest_path_cost(VertexId(0), VertexId(n - 1), CostModel::Length);
        engine.shortest_path_cost(VertexId(n / 2), VertexId(1), CostModel::Length);
        let snap = wb.metrics_snapshot();
        assert_eq!(
            snap.counter_total("pathrank_engine_queries_total", &[("backend", "ch")]),
            2
        );
        assert!(snap.counter_total("pathrank_engine_settled_nodes_total", &[]) > 0);
        // One full customization, then a sparse partial refresh.
        wb.cch_index(LandmarkMetric::TravelTime);
        wb.set_edge_speeds(&[(EdgeId(0), 9.0)]);
        wb.cch_index(LandmarkMetric::TravelTime);
        let snap = wb.metrics_snapshot();
        let full = snap
            .histogram("pathrank_cch_customize_ns", &[("kind", "full")])
            .expect("full customization timed");
        let sparse = snap
            .histogram("pathrank_cch_customize_ns", &[("kind", "sparse")])
            .expect("sparse customization timed");
        assert_eq!(full.count, 1);
        assert_eq!(sparse.count, 1);
        assert_eq!(
            snap.histogram("pathrank_cch_delta_edges", &[])
                .expect("delta size recorded")
                .sum,
            1
        );
        // The disabled registry turns the whole layer into no-op sinks.
        let quiet = Workbench::with_graph_and_registry(
            wb.graph.clone(),
            ExperimentConfig::small_test(),
            Registry::disabled(),
        );
        let mut engine = quiet.query_engine();
        engine.shortest_path_cost(VertexId(0), VertexId(n - 1), CostModel::Length);
        assert!(quiet.metrics_snapshot().counters.is_empty());
    }

    #[test]
    fn embedding_cache_returns_identical_matrices() {
        let mut wb = Workbench::new(ExperimentConfig::small_test());
        let a = wb.embedding(16);
        let b = wb.embedding(16);
        assert_eq!(a, b);
        assert_eq!(a.shape(), (wb.graph.vertex_count(), 16));
        let c = wb.embedding(8);
        assert_eq!(c.cols(), 8);
    }

    #[test]
    fn group_caches_are_stable() {
        let mut wb = Workbench::new(ExperimentConfig::small_test());
        let ccfg = CandidateConfig {
            k: 4,
            ..CandidateConfig::paper_default(Strategy::TkDI)
        };
        let a = wb.train_groups(&ccfg);
        let b = wb.train_groups(&ccfg);
        assert_eq!(a.len(), b.len());
        let t1 = wb.test_groups(4);
        let t2 = wb.test_groups(4);
        assert_eq!(t1.len(), t2.len());
        assert_eq!(t1.len(), wb.test_paths.len());
    }

    #[test]
    fn end_to_end_run_produces_sane_metrics() {
        let mut wb = Workbench::new(ExperimentConfig::small_test());
        let mcfg = ModelConfig::paper_default(16);
        let ccfg = CandidateConfig {
            k: 4,
            ..CandidateConfig::paper_default(Strategy::DTkDI)
        };
        let result = wb.run(mcfg, ccfg, quick_train_cfg());
        assert!(result.eval.mae.is_finite());
        assert!(result.eval.mae >= 0.0 && result.eval.mae <= 1.0);
        assert!((-1.0..=1.0).contains(&result.eval.tau));
        assert!((-1.0..=1.0).contains(&result.eval.rho));
        assert!(result.train_groups > 0 && result.test_groups > 0);
        assert_eq!(result.report.epoch_losses.len(), 2);
    }

    #[test]
    fn trained_model_beats_untrained_on_mae() {
        let mut wb = Workbench::new(ExperimentConfig::small_test());
        let ccfg = CandidateConfig {
            k: 4,
            ..CandidateConfig::paper_default(Strategy::DTkDI)
        };
        // Untrained model: evaluate directly.
        let emb = wb.embedding(16);
        let untrained = PathRankModel::new(
            wb.graph.vertex_count(),
            Some(emb),
            ModelConfig::paper_default(16),
        );
        let test = wb.test_groups(4);
        let before = evaluate_model(&untrained, &test);
        // Trained model. 20 epochs: enough budget that the improvement
        // holds for any reasonable rng stream, not just a lucky one.
        let tcfg = TrainConfig {
            epochs: 20,
            lr: 3e-3,
            ..quick_train_cfg()
        };
        let result = wb.run(ModelConfig::paper_default(16), ccfg, tcfg);
        assert!(
            result.eval.mae < before.mae,
            "training must improve MAE: {} -> {}",
            before.mae,
            result.eval.mae
        );
    }
}
