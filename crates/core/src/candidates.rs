//! Training-data generation — the paper's first contribution.
//!
//! For a trajectory path `P_T` from `s` to `d`, a training group consists
//! of candidate paths from `s` to `d`, each labelled with its ground-truth
//! ranking score `WeightedJaccard(P, P_T)`. The trajectory path itself is
//! included with score 1. Two generation strategies are compared in the
//! paper's Tables 1 and 2:
//!
//! * **TkDI** — the plain top-k shortest paths (Yen);
//! * **D-TkDI** — the *diversified* top-k shortest paths, which covers the
//!   score range far better (plain top-k paths are all nearly identical,
//!   so their labels cluster near one value, starving the regressor of
//!   signal).

use std::sync::Arc;

use crossbeam::thread;
use serde::{Deserialize, Serialize};

use pathrank_spatial::algo::ch::ContractionHierarchy;
use pathrank_spatial::algo::diversified::DiversifiedConfig;
use pathrank_spatial::algo::engine::QueryEngine;
use pathrank_spatial::algo::landmarks::{LandmarkConfig, LandmarkMetric, LandmarkTable};
use pathrank_spatial::graph::{CostModel, Graph};
use pathrank_spatial::path::Path;
use pathrank_spatial::similarity::{weighted_jaccard, EdgeWeight};

/// Candidate-generation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Plain top-k shortest paths.
    TkDI,
    /// Diversified top-k shortest paths (the paper's winner).
    DTkDI,
}

impl Strategy {
    /// Display name matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::TkDI => "TkDI",
            Strategy::DTkDI => "D-TkDI",
        }
    }
}

/// Parameters of candidate generation.
#[derive(Debug, Clone, Copy)]
pub struct CandidateConfig {
    /// Number of candidate paths per trajectory (k in the paper).
    pub k: usize,
    /// Generation strategy.
    pub strategy: Strategy,
    /// Similarity threshold for D-TkDI (ignored by TkDI).
    pub diversity_threshold: f64,
    /// Cap on paths examined by D-TkDI before giving up.
    pub max_scan: usize,
    /// Whether the trajectory path itself is added (score 1.0).
    pub include_trajectory: bool,
}

impl CandidateConfig {
    /// Paper-style defaults for a strategy: k = 10, diversity threshold
    /// 0.5 (tuned so that D-TkDI actively diversifies on the synthetic
    /// region, whose plain top-k paths are already less redundant than a
    /// real road network's).
    pub fn paper_default(strategy: Strategy) -> Self {
        CandidateConfig {
            k: 10,
            strategy,
            diversity_threshold: 0.5,
            max_scan: 400,
            include_trajectory: true,
        }
    }
}

/// One labelled candidate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankedCandidate {
    /// The candidate path.
    pub path: Path,
    /// Ground-truth ranking score: weighted Jaccard to the trajectory.
    pub score: f64,
}

/// All labelled candidates for one trajectory path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingGroup {
    /// The trajectory path (ground truth driver behaviour).
    pub trajectory: Path,
    /// Labelled candidates, including the trajectory itself when
    /// configured.
    pub candidates: Vec<RankedCandidate>,
}

impl TrainingGroup {
    /// Number of labelled candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the group carries no candidates.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

/// Generates the labelled candidate group for one trajectory.
///
/// One-shot convenience over [`generate_group_with`]; batch callers hold
/// one [`QueryEngine`] per worker instead (see [`generate_groups`]).
pub fn generate_group(g: &Graph, trajectory: &Path, cfg: &CandidateConfig) -> TrainingGroup {
    generate_group_with(&mut QueryEngine::new(g), trajectory, cfg)
}

/// [`generate_group`] on a caller-provided engine. Candidate generation
/// is the single heaviest routing consumer in the pipeline — k paths per
/// trajectory, each accepted path firing one constrained spur search per
/// prefix vertex — and all of it reuses the engine's search state.
pub fn generate_group_with(
    engine: &mut QueryEngine<'_>,
    trajectory: &Path,
    cfg: &CandidateConfig,
) -> TrainingGroup {
    let g = engine.graph();
    let (s, d) = (trajectory.source(), trajectory.target());
    let generated: Vec<(Path, f64)> = match cfg.strategy {
        Strategy::TkDI => engine.yen_k_shortest(s, d, CostModel::Length, cfg.k),
        Strategy::DTkDI => {
            let dcfg = DiversifiedConfig {
                k: cfg.k,
                threshold: cfg.diversity_threshold,
                max_scan: cfg.max_scan,
                weight: EdgeWeight::Length,
            };
            engine.diversified_top_k(s, d, CostModel::Length, &dcfg)
        }
    };

    let mut candidates: Vec<RankedCandidate> = Vec::with_capacity(generated.len() + 1);
    if cfg.include_trajectory {
        candidates.push(RankedCandidate {
            path: trajectory.clone(),
            score: 1.0,
        });
    }
    for (path, _) in generated {
        if cfg.include_trajectory && path.same_route(trajectory) {
            continue; // already present with score 1.0
        }
        let score = weighted_jaccard(g, &path, trajectory, EdgeWeight::Length);
        candidates.push(RankedCandidate { path, score });
    }
    TrainingGroup {
        trajectory: trajectory.clone(),
        candidates,
    }
}

/// Generates groups for many trajectories, splitting the work across
/// `threads` OS threads (candidate generation dominates preprocessing
/// time: each trajectory costs k constrained Dijkstra sweeps). Every
/// worker allocates one [`QueryEngine`] and reuses it for its whole
/// chunk; all workers share one ALT landmark table
/// ([`pathrank_spatial::algo::landmarks::LandmarkTable`], built here
/// once under the length metric the candidate searches run on), so every
/// spur search is landmark-directed. ALT preserves exactness — candidate
/// *costs* are identical to the plain engine's; only tie-breaking among
/// equal-cost optima may differ. Callers that already hold a table for
/// this graph (e.g. `Workbench`) pass it through
/// [`generate_groups_with_landmarks`] instead of re-precomputing.
pub fn generate_groups(
    g: &Graph,
    trajectories: &[Path],
    cfg: &CandidateConfig,
    threads: usize,
) -> Vec<TrainingGroup> {
    generate_groups_with_landmarks(g, trajectories, cfg, threads, None)
}

/// [`generate_groups`] on a caller-provided ALT table (must be built on
/// `g` under the length metric); `None` builds a transient one.
pub fn generate_groups_with_landmarks(
    g: &Graph,
    trajectories: &[Path],
    cfg: &CandidateConfig,
    threads: usize,
    landmarks: Option<Arc<LandmarkTable>>,
) -> Vec<TrainingGroup> {
    generate_groups_with_backends(g, trajectories, cfg, threads, landmarks, None)
}

/// [`generate_groups`] with every search index the caller already holds:
/// an ALT table (`None` builds a transient one) and optionally a
/// contraction hierarchy, both built on `g` under the length metric.
///
/// Each worker engine attaches both indexes and lets the per-query
/// [`pathrank_spatial::algo::engine::SearchBackend`] dispatch sort out
/// the rest: the unconstrained initial shortest path of every Yen /
/// diversified enumeration takes the CH fast path, while the banned-set
/// spur searches — where shortcuts would be unsound — stay ALT-guided.
/// A transient CH is *not* built here: unlike the ALT table, its build
/// cost only amortises across many trajectory batches, so it is worth
/// holding only at the `Workbench` / server level.
pub fn generate_groups_with_backends(
    g: &Graph,
    trajectories: &[Path],
    cfg: &CandidateConfig,
    threads: usize,
    landmarks: Option<Arc<LandmarkTable>>,
    ch: Option<Arc<ContractionHierarchy>>,
) -> Vec<TrainingGroup> {
    let threads = threads.max(1);
    if trajectories.is_empty() {
        return Vec::new();
    }
    let table = landmarks.unwrap_or_else(|| {
        Arc::new(LandmarkTable::build(
            g,
            LandmarkMetric::Length,
            &LandmarkConfig {
                threads,
                ..LandmarkConfig::default()
            },
        ))
    });
    let worker_engine = |table: Arc<LandmarkTable>, ch: Option<Arc<ContractionHierarchy>>| {
        let engine = QueryEngine::new(g).with_landmarks(table);
        match ch {
            Some(ch) => engine.with_ch(ch),
            None => engine,
        }
    };
    if threads == 1 || trajectories.len() < 2 * threads {
        let mut engine = worker_engine(table, ch);
        return trajectories
            .iter()
            .map(|t| generate_group_with(&mut engine, t, cfg))
            .collect();
    }
    let chunk = trajectories.len().div_ceil(threads);
    let results: Vec<Vec<TrainingGroup>> = thread::scope(|scope| {
        let handles: Vec<_> = trajectories
            .chunks(chunk)
            .map(|slice| {
                let table = Arc::clone(&table);
                let ch = ch.clone();
                let worker_engine = &worker_engine;
                scope.spawn(move |_| {
                    let mut engine = worker_engine(table, ch);
                    slice
                        .iter()
                        .map(|t| generate_group_with(&mut engine, t, cfg))
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("thread scope failed");
    results.into_concat()
}

/// Per-trajectory detour factors: `length(trajectory) / length(shortest
/// source→target path)`, the paper's core observation quantified (local
/// drivers deviate from the shortest path; the factor is how much).
///
/// The group probes are batched: every trajectory contributes its
/// `source -> target` pair, and when the engine carries a
/// [`ContractionHierarchy`] covering the length metric, **one**
/// bucket-based [`pathrank_spatial::algo::m2m::DistanceTable`] over the
/// deduplicated endpoint sets answers all of them
/// ([`QueryEngine::many_to_many`]) — instead of one point-to-point
/// search per group. Engines without a usable CH fall back to pairwise
/// cost probes; both paths are exact, so the factors agree to float
/// association.
///
/// Factors are `>= 1` up to float noise; a trajectory that *is* the
/// shortest path scores exactly 1. Degenerate trajectories (zero-length
/// or, defensively, unreachable endpoints) report 1.0.
pub fn trajectory_detour_factors(engine: &mut QueryEngine<'_>, trajectories: &[Path]) -> Vec<f64> {
    let g = engine.graph();
    let mut sources: Vec<_> = trajectories.iter().map(|p| p.source()).collect();
    let mut targets: Vec<_> = trajectories.iter().map(|p| p.target()).collect();
    sources.sort_unstable_by_key(|v| v.0);
    sources.dedup();
    targets.sort_unstable_by_key(|v| v.0);
    targets.dedup();
    let table = engine.many_to_many(&sources, &targets, CostModel::Length);
    trajectories
        .iter()
        .map(|p| {
            let (s, t) = (p.source(), p.target());
            let optimal = match &table {
                Some(tbl) => {
                    let d = tbl.dist_between(s, t).expect("endpoints gathered above");
                    d.is_finite().then_some(d)
                }
                None => engine.shortest_path_cost(s, t, CostModel::Length),
            };
            match optimal {
                Some(d) if d > 0.0 => p.length_m(g) / d,
                _ => 1.0,
            }
        })
        .collect()
}

/// Small helper: flattens the per-thread chunks back into one vector.
trait IntoConcat<T> {
    fn into_concat(self) -> Vec<T>;
}

impl<T> IntoConcat<T> for Vec<Vec<T>> {
    fn into_concat(self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.iter().map(Vec::len).sum());
        for v in self {
            out.extend(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathrank_spatial::algo::dijkstra::shortest_path;
    use pathrank_spatial::generators::{region_network, RegionConfig};
    use pathrank_spatial::graph::VertexId;
    use pathrank_traj::simulator::{simulate_fleet, SimulationConfig};

    fn setup() -> (Graph, Vec<Path>) {
        let g = region_network(&RegionConfig::small_test(), 8);
        let trips = simulate_fleet(&g, &SimulationConfig::small_test(), 9);
        let paths = trips.into_iter().map(|t| t.path).collect();
        (g, paths)
    }

    #[test]
    fn group_contains_trajectory_with_score_one() {
        let (g, paths) = setup();
        let cfg = CandidateConfig::paper_default(Strategy::DTkDI);
        let group = generate_group(&g, &paths[0], &cfg);
        assert!(!group.is_empty());
        assert!(group.candidates[0].path.same_route(&paths[0]));
        assert_eq!(group.candidates[0].score, 1.0);
    }

    #[test]
    fn scores_are_correct_weighted_jaccard() {
        let (g, paths) = setup();
        let cfg = CandidateConfig::paper_default(Strategy::TkDI);
        let group = generate_group(&g, &paths[1], &cfg);
        for c in &group.candidates {
            let expect = weighted_jaccard(&g, &c.path, &paths[1], EdgeWeight::Length);
            assert!((c.score - expect).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&c.score));
            assert_eq!(c.path.source(), paths[1].source());
            assert_eq!(c.path.target(), paths[1].target());
        }
    }

    #[test]
    fn no_duplicate_trajectory_when_it_is_shortest() {
        // Use the actual shortest path as "trajectory": TkDI will generate
        // it again; the group must keep exactly one copy.
        let (g, _) = setup();
        let s = VertexId(0);
        let d = VertexId((g.vertex_count() - 1) as u32);
        let sp = shortest_path(&g, s, d, CostModel::Length).unwrap();
        let cfg = CandidateConfig::paper_default(Strategy::TkDI);
        let group = generate_group(&g, &sp, &cfg);
        let copies = group
            .candidates
            .iter()
            .filter(|c| c.path.same_route(&sp))
            .count();
        assert_eq!(copies, 1);
        // And that copy is the score-1.0 trajectory entry.
        assert_eq!(group.candidates[0].score, 1.0);
    }

    #[test]
    fn dtkdi_labels_spread_wider_than_tkdi() {
        let (g, paths) = setup();
        let spread = |strategy: Strategy| {
            let cfg = CandidateConfig {
                include_trajectory: false,
                ..CandidateConfig::paper_default(strategy)
            };
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            let mut n = 0usize;
            for p in &paths {
                let group = generate_group(&g, p, &cfg);
                for c in &group.candidates {
                    lo = lo.min(c.score);
                    hi = hi.max(c.score);
                    n += 1;
                }
            }
            assert!(n > 0);
            hi - lo
        };
        let tk = spread(Strategy::TkDI);
        let dtk = spread(Strategy::DTkDI);
        assert!(
            dtk >= tk - 1e-9,
            "diversified labels must cover at least as wide a range \
             (TkDI {tk:.3} vs D-TkDI {dtk:.3})"
        );
    }

    #[test]
    fn reused_engine_groups_match_one_shot() {
        let (g, paths) = setup();
        for strategy in [Strategy::TkDI, Strategy::DTkDI] {
            let cfg = CandidateConfig::paper_default(strategy);
            let mut engine = QueryEngine::new(&g);
            for p in paths.iter().take(6) {
                let fresh = generate_group(&g, p, &cfg);
                let reused = generate_group_with(&mut engine, p, &cfg);
                assert_eq!(fresh.len(), reused.len());
                for (a, b) in fresh.candidates.iter().zip(reused.candidates.iter()) {
                    assert!(a.path.same_route(&b.path));
                    assert_eq!(a.score, b.score, "scores must be bit-identical");
                }
            }
        }
    }

    #[test]
    fn parallel_generation_matches_sequential() {
        let (g, paths) = setup();
        let cfg = CandidateConfig::paper_default(Strategy::DTkDI);
        let seq = generate_groups(&g, &paths, &cfg, 1);
        let par = generate_groups(&g, &paths, &cfg, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert!(a.trajectory.same_route(&b.trajectory));
            assert_eq!(a.len(), b.len());
            for (x, y) in a.candidates.iter().zip(b.candidates.iter()) {
                assert!(x.path.same_route(&y.path));
                assert_eq!(x.score, y.score);
            }
        }
    }

    #[test]
    fn alt_threaded_groups_match_plain_engine_generation() {
        // generate_groups now runs every worker on ALT landmarks; on the
        // float-geometry region network the optimum is unique, so the
        // groups must be identical to a plain (landmark-free) engine's —
        // same candidate routes, bit-identical scores.
        let (g, paths) = setup();
        for strategy in [Strategy::TkDI, Strategy::DTkDI] {
            let cfg = CandidateConfig::paper_default(strategy);
            let alt = generate_groups(&g, &paths, &cfg, 2);
            let mut plain_engine = QueryEngine::new(&g);
            for (group, p) in alt.iter().zip(paths.iter()) {
                let plain = generate_group_with(&mut plain_engine, p, &cfg);
                assert_eq!(group.len(), plain.len());
                for (a, b) in group.candidates.iter().zip(plain.candidates.iter()) {
                    assert!(a.path.same_route(&b.path), "{strategy:?} route diverged");
                    assert_eq!(a.score, b.score, "{strategy:?} score diverged");
                }
            }
        }
    }

    #[test]
    fn ch_backed_groups_match_plain_engine_generation() {
        // Workers attach the CH next to the ALT table; the unconstrained
        // initial path of each enumeration moves to the CH backend while
        // spur searches stay ALT. On the float-geometry region the
        // optimum is unique, so groups must be identical to a plain
        // engine's — same candidate routes, bit-identical scores.
        use pathrank_spatial::algo::ch::{ChConfig, ContractionHierarchy};
        let (g, paths) = setup();
        let ch = Arc::new(ContractionHierarchy::build(
            &g,
            LandmarkMetric::Length,
            &ChConfig::default(),
        ));
        for strategy in [Strategy::TkDI, Strategy::DTkDI] {
            let cfg = CandidateConfig::paper_default(strategy);
            let fast =
                generate_groups_with_backends(&g, &paths, &cfg, 2, None, Some(Arc::clone(&ch)));
            let mut plain_engine = QueryEngine::new(&g);
            for (group, p) in fast.iter().zip(paths.iter()) {
                let plain = generate_group_with(&mut plain_engine, p, &cfg);
                assert_eq!(group.len(), plain.len());
                for (a, b) in group.candidates.iter().zip(plain.candidates.iter()) {
                    assert!(a.path.same_route(&b.path), "{strategy:?} route diverged");
                    assert_eq!(a.score, b.score, "{strategy:?} score diverged");
                }
            }
        }
    }

    #[test]
    fn m2m_batched_detour_factors_match_pairwise_probes() {
        use pathrank_spatial::algo::ch::{ChConfig, ContractionHierarchy};
        let (g, paths) = setup();
        let ch = Arc::new(ContractionHierarchy::build(
            &g,
            LandmarkMetric::Length,
            &ChConfig::default(),
        ));
        let mut batched_engine = QueryEngine::new(&g).with_ch(ch);
        let batched = trajectory_detour_factors(&mut batched_engine, &paths);
        let mut plain_engine = QueryEngine::new(&g);
        let pairwise = trajectory_detour_factors(&mut plain_engine, &paths);
        assert_eq!(batched.len(), paths.len());
        for (i, (a, b)) in batched.iter().zip(pairwise.iter()).enumerate() {
            assert!(
                (a - b).abs() < 1e-9,
                "trajectory {i}: batched {a} vs pairwise {b}"
            );
            assert!(*a >= 1.0 - 1e-9, "detour factor below 1: {a}");
        }
        // Simulated drivers route under hidden preferences, so at least
        // some trajectories must actually detour.
        assert!(
            batched.iter().any(|f| *f > 1.0 + 1e-6),
            "fleet should contain non-shortest trajectories"
        );
    }

    #[test]
    fn k_bounds_candidate_count() {
        let (g, paths) = setup();
        for strategy in [Strategy::TkDI, Strategy::DTkDI] {
            let cfg = CandidateConfig {
                k: 4,
                ..CandidateConfig::paper_default(strategy)
            };
            let group = generate_group(&g, &paths[0], &cfg);
            // k candidates plus (possibly) the trajectory itself.
            assert!(group.len() <= 5, "{strategy:?} produced {}", group.len());
        }
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(Strategy::TkDI.label(), "TkDI");
        assert_eq!(Strategy::DTkDI.label(), "D-TkDI");
    }
}
