//! Property-test harness locking in partial CCH customization
//! exactness.
//!
//! `Cch::apply_delta` is only an optimisation if it can never change an
//! answer: the sparse pass re-relaxes just the shortcut arcs a speed
//! delta touches, and its claim — asserted here, *never* re-checked on
//! the hot path — is **bit-identity** with a full
//! `CchTopology::customize` of the same graph state. The properties
//! drive random graphs through random chained update batches and
//! compare all-pairs `query_cost` answers bitwise against a fresh full
//! customization, plus (through the engine, which recomputes CH costs
//! in Dijkstra's fold order over the unpacked edges) against a plain
//! index-free Dijkstra.
//!
//! Covered regimes, per the issue: empty deltas, single-edge deltas,
//! duplicate-edge batches where the last entry must win,
//! clamp-boundary speeds (below `MIN_EDGE_SPEED_KMH`, above
//! `MAX_EDGE_SPEED_KMH`, and exact echoes of the clamped value),
//! all-edges deltas, superset deltas carrying no-op entries, and
//! chained deltas across many epochs — on both the TravelTime metric
//! (where speeds move costs) and the Length metric (where a speed
//! delta only restamps the epoch).

use std::sync::Arc;

use pathrank::spatial::algo::cch::{Cch, CchConfig, CchTopology};
use pathrank::spatial::algo::ch::ChSearch;
use pathrank::spatial::algo::dijkstra::shortest_path;
use pathrank::spatial::algo::engine::{QueryEngine, SearchBackend};
use pathrank::spatial::builder::GraphBuilder;
use pathrank::spatial::geometry::Point;
use pathrank::spatial::graph::{
    CostModel, EdgeAttrs, EdgeId, Graph, RoadCategory, VertexId, MAX_EDGE_SPEED_KMH,
    MIN_EDGE_SPEED_KMH,
};
use proptest::prelude::*;

/// Builds a random directed graph from proptest-drawn raw material:
/// `n` vertices with the given coordinates and deduplicated directed
/// edges with integer-metre lengths across mixed road categories (so
/// free-flow speeds differ per edge).
fn build_graph(n: usize, coords: &[(f64, f64)], edges: &[(usize, usize, u32)]) -> Graph {
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..n)
        .map(|i| b.add_vertex(Point::new(coords[i].0, coords[i].1)))
        .collect();
    let mut seen = std::collections::HashSet::new();
    for &(f, t, w) in edges {
        let (f, t) = (f % n, t % n);
        let category = match w % 3 {
            0 => RoadCategory::Arterial,
            1 => RoadCategory::Rural,
            _ => RoadCategory::Residential,
        };
        if f != t && seen.insert((f, t)) {
            b.add_edge(
                vs[f],
                vs[t],
                EdgeAttrs::with_default_speed(w as f64, category),
            )
            .unwrap();
        }
    }
    b.build()
}

/// All-pairs `query_cost` bit-identity between two customizations of
/// the same topology — the external form of the arc-level equality the
/// crate's unit tests assert.
fn assert_same_answers(a: &Cch, b: &Cch, what: &str) {
    assert_eq!(a.weights_epoch(), b.weights_epoch(), "{what}: epoch");
    let n = a.vertex_count();
    let mut sa = ChSearch::new(n);
    let mut sb = ChSearch::new(n);
    for s in 0..n {
        for t in 0..n {
            let (s, t) = (VertexId(s as u32), VertexId(t as u32));
            let ca = a.query_cost(&mut sa, s, t);
            let cb = b.query_cost(&mut sb, s, t);
            assert_eq!(
                ca.map(f64::to_bits),
                cb.map(f64::to_bits),
                "{what}: {s:?}->{t:?} diverged ({ca:?} vs {cb:?})"
            );
        }
    }
}

/// All-pairs engine-vs-plain-Dijkstra bit-identity under `cost`. The
/// engine recomputes CCH answers left-to-right over the unpacked
/// original edges — Dijkstra's own fold order — so bit-equality holds
/// even on non-integer travel-time weights.
fn assert_matches_dijkstra(g: &Graph, cch: &Cch, cost: CostModel<'_>, what: &str) {
    let mut engine = QueryEngine::new(g).with_cch(Arc::new(cch.clone()));
    assert_eq!(
        engine.backend_for(cost),
        SearchBackend::Cch,
        "{what}: the partially customized index must actually serve"
    );
    let n = g.vertex_count() as u32;
    for s in 0..n {
        for t in 0..n {
            let (s, t) = (VertexId(s), VertexId(t));
            if s == t {
                continue;
            }
            let plain = shortest_path(g, s, t, cost).map(|p| p.cost(g, cost));
            let fast = engine.shortest_path_cost(s, t, cost);
            assert_eq!(
                plain.map(f64::to_bits),
                fast.map(f64::to_bits),
                "{what}: {s:?}->{t:?} diverged from Dijkstra"
            );
        }
    }
}

/// One chained step: mutate the graph, catch `partial` up with the
/// sparse delta and check it against a fresh full customization (and,
/// when asked, Dijkstra).
fn step(
    g: &mut Graph,
    topo: &Arc<CchTopology>,
    partial: &mut Cch,
    cost: CostModel<'_>,
    updates: &[(EdgeId, f64)],
    check_dijkstra: bool,
    what: &str,
) {
    let delta = g.set_edge_speeds(updates);
    partial.apply_delta(g, &delta);
    let full = topo.customize(g, &cost);
    assert_same_answers(partial, &full, what);
    if check_dijkstra {
        assert_matches_dijkstra(g, partial, cost, what);
    }
}

const MAX_N: usize = 9;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: random graphs, random chained sparse
    /// batches across several epochs (speeds drawn wide enough to hit
    /// both clamp boundaries, edge indices free to repeat inside a
    /// batch), checked after *every* epoch against a fresh full
    /// customization bitwise and against plain Dijkstra — on both
    /// metrics.
    #[test]
    fn cch_partial_chained_random_deltas_stay_bit_identical(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..28),
        batches in proptest::collection::vec(
            proptest::collection::vec((0usize..64, 0.05f64..400.0), 0..10),
            1..5,
        ),
    ) {
        let mut g = build_graph(n, &coords, &edges);
        let m = g.edge_count();
        prop_assume!(m > 0);
        let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
        let mut partial_tt = topo.customize(&g, &CostModel::TravelTime);
        let mut partial_len = topo.customize(&g, &CostModel::Length);
        for (i, batch) in batches.iter().enumerate() {
            let updates: Vec<(EdgeId, f64)> = batch
                .iter()
                .map(|&(e, s)| (EdgeId((e % m) as u32), s))
                .collect();
            let delta = g.set_edge_speeds(&updates);
            partial_tt.apply_delta(&g, &delta);
            // Speed deltas never move length weights: the Length index
            // only restamps, and must stay exactly valid.
            partial_len.apply_delta(&g, &delta);
            let full_tt = topo.customize(&g, &CostModel::TravelTime);
            assert_same_answers(&partial_tt, &full_tt, &format!("TravelTime epoch {i}"));
            let full_len = topo.customize(&g, &CostModel::Length);
            assert_same_answers(&partial_len, &full_len, &format!("Length epoch {i}"));
            assert_matches_dijkstra(
                &g,
                &partial_tt,
                CostModel::TravelTime,
                &format!("TravelTime epoch {i}"),
            );
            assert_matches_dijkstra(
                &g,
                &partial_len,
                CostModel::Length,
                &format!("Length epoch {i}"),
            );
        }
    }
}

/// A fixed deterministic grid-ish graph for the directed unit cases.
fn fixed_graph() -> Graph {
    let coords: Vec<(f64, f64)> = (0..8)
        .map(|i| (((i * 137) % 700) as f64, ((i * 311) % 900) as f64))
        .collect();
    let edges: Vec<(usize, usize, u32)> = vec![
        (0, 1, 13),
        (1, 2, 7),
        (2, 3, 22),
        (3, 0, 5),
        (1, 4, 31),
        (4, 5, 9),
        (5, 6, 17),
        (6, 7, 3),
        (7, 4, 11),
        (2, 6, 29),
        (5, 1, 19),
        (0, 7, 41),
        (7, 3, 23),
        (3, 5, 37),
    ];
    build_graph(8, &coords, &edges)
}

#[test]
fn cch_partial_empty_delta_is_a_noop() {
    let mut g = fixed_graph();
    let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
    let mut partial = topo.customize(&g, &CostModel::TravelTime);
    assert_eq!(partial.apply_delta(&g, &[]), 0);
    step(
        &mut g,
        &topo,
        &mut partial,
        CostModel::TravelTime,
        &[],
        true,
        "empty delta",
    );
}

#[test]
fn cch_partial_single_edge_delta_is_exact() {
    let mut g = fixed_graph();
    let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
    let mut partial = topo.customize(&g, &CostModel::TravelTime);
    step(
        &mut g,
        &topo,
        &mut partial,
        CostModel::TravelTime,
        &[(EdgeId(3), 4.5)],
        true,
        "single edge",
    );
}

#[test]
fn cch_partial_duplicate_edges_last_wins() {
    let mut g = fixed_graph();
    let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
    let mut partial = topo.customize(&g, &CostModel::TravelTime);
    // The batch names edge 2 three times; the stored speed — and so the
    // delta the graph reports — must carry the *last* value only.
    let updates = [
        (EdgeId(2), 55.0),
        (EdgeId(5), 70.0),
        (EdgeId(2), 18.0),
        (EdgeId(2), 96.0),
    ];
    step(
        &mut g,
        &topo,
        &mut partial,
        CostModel::TravelTime,
        &updates,
        true,
        "duplicate last-wins",
    );
    assert_eq!(
        g.edge(EdgeId(2)).attrs.speed_kmh.to_bits(),
        96.0f64.to_bits()
    );
}

#[test]
fn cch_partial_clamp_boundary_speeds_are_exact() {
    let mut g = fixed_graph();
    let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
    let mut partial = topo.customize(&g, &CostModel::TravelTime);
    // Below the lower clamp and above the upper clamp: the stored
    // (post-clamp) speeds land exactly on the boundaries.
    let updates = [(EdgeId(0), 1e-12), (EdgeId(1), 5000.0)];
    step(
        &mut g,
        &topo,
        &mut partial,
        CostModel::TravelTime,
        &updates,
        true,
        "clamp boundaries",
    );
    assert_eq!(g.edge(EdgeId(0)).attrs.speed_kmh, MIN_EDGE_SPEED_KMH);
    assert_eq!(g.edge(EdgeId(1)).attrs.speed_kmh, MAX_EDGE_SPEED_KMH);
    // Echoing the boundary values back — even via different pre-clamp
    // inputs — is a pure no-op: empty delta, no epoch bump, and an
    // apply_delta of the echoes recomputes nothing.
    let epoch = g.weights_epoch();
    let echoes = [(EdgeId(0), 1e-9), (EdgeId(1), MAX_EDGE_SPEED_KMH * 2.0)];
    assert!(g.set_edge_speeds(&echoes).is_empty());
    assert_eq!(g.weights_epoch(), epoch);
    // A superset delta carrying unmoved edges is harmless: those seeds
    // recompute to the same bits and propagation stops immediately.
    let superset = [
        (EdgeId(0), MIN_EDGE_SPEED_KMH),
        (EdgeId(1), MAX_EDGE_SPEED_KMH),
    ];
    partial.apply_delta(&g, &superset);
    let full = topo.customize(&g, &CostModel::TravelTime);
    assert_same_answers(&partial, &full, "superset echo delta");
}

#[test]
fn cch_partial_all_edges_delta_is_exact() {
    let mut g = fixed_graph();
    let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
    let mut partial = topo.customize(&g, &CostModel::TravelTime);
    let updates: Vec<(EdgeId, f64)> = (0..g.edge_count())
        .map(|i| (EdgeId(i as u32), 5.0 + (i as f64) * 3.7))
        .collect();
    step(
        &mut g,
        &topo,
        &mut partial,
        CostModel::TravelTime,
        &updates,
        true,
        "all edges",
    );
}

#[test]
fn cch_partial_chained_epochs_on_fixed_graph_are_exact() {
    let mut g = fixed_graph();
    let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
    let mut partial = topo.customize(&g, &CostModel::TravelTime);
    // Many small epochs in sequence without ever re-customizing from
    // scratch: drift must not accumulate, the last epoch still checks
    // against Dijkstra.
    for round in 0..12u32 {
        let e = EdgeId(round % g.edge_count() as u32);
        let updates = [(e, 3.0 + f64::from(round) * 11.3)];
        let last = round == 11;
        step(
            &mut g,
            &topo,
            &mut partial,
            CostModel::TravelTime,
            &updates,
            last,
            &format!("chained epoch {round}"),
        );
    }
    assert_eq!(partial.weights_epoch(), g.weights_epoch());
}
