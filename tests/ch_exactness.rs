//! Property-test harness locking in contraction-hierarchy exactness.
//!
//! A CH is only an optimisation if it can never change an answer. These
//! properties drive CH-backed engines against the plain (index-free)
//! free functions on random generator graphs and require **bit-identical
//! costs** — not approximate equality. Edge weights are small integers,
//! so every equal-cost path sums to exactly the same `f64` and float
//! tie-break noise cannot mask a real divergence; the engine recomputes
//! CH costs left-to-right over the unpacked original edges, the same
//! fold order as Dijkstra's relaxation chain.
//!
//! Covered regimes, per the issue:
//! * one-to-one `shortest_path` / `astar_shortest_path` /
//!   `bidirectional_shortest_path` and the cost probe vs plain Dijkstra;
//! * full Yen enumerations on a CH+ALT engine (the unconstrained initial
//!   path runs on the CH, every spur search falls back) vs plain Yen;
//! * constrained searches under random banned vertex/edge sets — the CH
//!   must **never** be consulted there (a banned edge may hide inside a
//!   shortcut), asserted via `constrained_backend_for` and by bitwise
//!   equality with the plain constrained search;
//! * `CostModel::Custom` slices and interleaved metrics, where the
//!   precomputed metric is invalid and the engine must fall back —
//!   asserted both by `backend_for` and by bitwise path equality;
//! * disconnected components (unreachable stays unreachable);
//! * shortcut unpacking returning valid contiguous `EdgeId` paths.

use std::sync::Arc;

use pathrank::spatial::algo::cch::{CchConfig, CchTopology};
use pathrank::spatial::algo::ch::{ChConfig, ContractionHierarchy};
use pathrank::spatial::algo::dijkstra::{constrained_shortest_path, shortest_path};
use pathrank::spatial::algo::engine::{QueryEngine, SearchBackend};
use pathrank::spatial::algo::landmarks::{LandmarkConfig, LandmarkMetric, LandmarkTable};
use pathrank::spatial::algo::yen::yen_k_shortest;
use pathrank::spatial::builder::GraphBuilder;
use pathrank::spatial::geometry::Point;
use pathrank::spatial::graph::{CostModel, EdgeAttrs, EdgeId, Graph, RoadCategory, VertexId};
use pathrank::spatial::util::BitSet;
use proptest::prelude::*;

/// Builds a random directed graph from proptest-drawn raw material:
/// `n` vertices with the given coordinates and deduplicated directed
/// edges with integer-metre lengths.
fn build_graph(n: usize, coords: &[(f64, f64)], edges: &[(usize, usize, u32)]) -> Graph {
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..n)
        .map(|i| b.add_vertex(Point::new(coords[i].0, coords[i].1)))
        .collect();
    let mut seen = std::collections::HashSet::new();
    for &(f, t, w) in edges {
        let (f, t) = (f % n, t % n);
        if f != t && seen.insert((f, t)) {
            b.add_edge(
                vs[f],
                vs[t],
                EdgeAttrs::with_default_speed(w as f64, RoadCategory::Rural),
            )
            .unwrap();
        }
    }
    b.build()
}

/// A CH-backed engine (length metric) over `g`, with a small witness cap
/// so redundant-shortcut paths get exercised too.
fn ch_engine(g: &Graph) -> (Arc<ContractionHierarchy>, QueryEngine<'_>) {
    let ch = Arc::new(ContractionHierarchy::build(
        g,
        LandmarkMetric::Length,
        &ChConfig {
            threads: 2,
            witness_settle_cap: 8,
        },
    ));
    let engine = QueryEngine::new(g).with_ch(Arc::clone(&ch));
    (ch, engine)
}

/// Exact cost of an optional path under a cost model (`None` ⇒ NaN-free
/// sentinel), so reachability and cost compare in one assert.
fn cost_of(g: &Graph, p: &Option<pathrank::spatial::path::Path>, cost: CostModel<'_>) -> f64 {
    p.as_ref().map_or(-1.0, |p| p.cost(g, cost))
}

const MAX_N: usize = 10;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ch_one_to_one_costs_bit_identical_to_dijkstra(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..30),
    ) {
        let g = build_graph(n, &coords, &edges);
        let (_ch, mut engine) = ch_engine(&g);
        prop_assert_eq!(engine.backend_for(CostModel::Length), SearchBackend::Ch);
        for s in 0..n {
            for t in 0..n {
                let (s, t) = (VertexId(s as u32), VertexId(t as u32));
                if s == t {
                    continue;
                }
                let plain = shortest_path(&g, s, t, CostModel::Length);
                for run in [
                    QueryEngine::shortest_path,
                    QueryEngine::astar_shortest_path,
                    QueryEngine::bidirectional_shortest_path,
                ] {
                    let ch_path = run(&mut engine, s, t, CostModel::Length);
                    if let Some(p) = &ch_path {
                        p.validate(&g).expect("CH paths must be graph-valid");
                        prop_assert_eq!(p.source(), s);
                        prop_assert_eq!(p.target(), t);
                    }
                    prop_assert_eq!(
                        cost_of(&g, &plain, CostModel::Length),
                        cost_of(&g, &ch_path, CostModel::Length),
                        "CH diverged on {:?}->{:?}", s, t
                    );
                }
                // The cost probe (map matching's transition model) too.
                let probe = engine.shortest_path_cost(s, t, CostModel::Length);
                prop_assert_eq!(
                    plain.as_ref().map(|p| p.cost(&g, CostModel::Length)),
                    probe,
                    "CH cost probe diverged on {:?}->{:?}", s, t
                );
            }
        }
    }

    #[test]
    fn ch_yen_cost_sequences_bit_identical(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..26),
        k in 1usize..12,
    ) {
        // CH + ALT together — the serving configuration: Yen's initial
        // path runs on the CH, its spur searches on ALT.
        let g = build_graph(n, &coords, &edges);
        let table = Arc::new(LandmarkTable::build(
            &g,
            LandmarkMetric::Length,
            &LandmarkConfig { count: 3, seed: 0xa17, threads: 2 },
        ));
        let (_ch, engine) = ch_engine(&g);
        let mut engine = engine.with_landmarks(table);
        let s = VertexId(0);
        let t = VertexId((n - 1) as u32);
        let plain: Vec<f64> = yen_k_shortest(&g, s, t, CostModel::Length, k)
            .into_iter()
            .map(|(_, c)| c)
            .collect();
        let fast: Vec<f64> = engine
            .yen_k_shortest(s, t, CostModel::Length, k)
            .into_iter()
            .map(|(_, c)| c)
            .collect();
        prop_assert_eq!(plain, fast, "Yen cost sequence diverged");
    }

    #[test]
    fn ch_constrained_searches_fall_back_and_respect_bans(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..30),
        banned_v in proptest::collection::vec(0usize..MAX_N, 0..4),
        banned_e in proptest::collection::vec(0usize..64, 0..8),
    ) {
        let g = build_graph(n, &coords, &edges);
        let (_ch, mut engine) = ch_engine(&g);
        // The CH is attached and would cover the metric — but bans make
        // shortcuts unsound, so the constrained dispatch must avoid it.
        prop_assert_eq!(engine.backend_for(CostModel::Length), SearchBackend::Ch);
        prop_assert_eq!(
            engine.constrained_backend_for(CostModel::Length),
            SearchBackend::Plain
        );
        let mut bv = BitSet::new(g.vertex_count());
        for v in banned_v {
            bv.insert((v % n) as u32);
        }
        let mut be = BitSet::new(g.edge_count());
        for e in banned_e {
            if g.edge_count() > 0 {
                be.insert((e % g.edge_count()) as u32);
            }
        }
        for s in 0..n {
            for t in 0..n {
                let (s, t) = (VertexId(s as u32), VertexId(t as u32));
                let plain = constrained_shortest_path(&g, s, t, CostModel::Length, &bv, &be);
                let fast = engine.constrained_shortest_path(s, t, CostModel::Length, &bv, &be);
                prop_assert_eq!(
                    cost_of(&g, &plain, CostModel::Length),
                    cost_of(&g, &fast, CostModel::Length),
                    "constrained search diverged on {:?}->{:?}", s, t
                );
                if let Some(p) = &fast {
                    for v in p.vertices() {
                        prop_assert!(!bv.contains(v.0), "banned vertex on path");
                    }
                    for e in p.edges() {
                        prop_assert!(!be.contains(e.0), "banned edge on path");
                    }
                }
            }
        }
    }

    #[test]
    fn ch_custom_cost_slices_engage_fallback(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..30),
        salt in 1u32..40,
    ) {
        let g = build_graph(n, &coords, &edges);
        let (_ch, mut engine) = ch_engine(&g);
        let custom: Vec<f64> = (0..g.edge_count())
            .map(|i| 1.0 + ((i as u32 * salt) % 17) as f64)
            .collect();
        let cost = CostModel::Custom(&custom);
        // The precomputed metric must not be consulted...
        prop_assert_eq!(engine.backend_for(cost), SearchBackend::Plain);
        prop_assert!(!engine.uses_ch(cost));
        prop_assert!(!engine.uses_ch(CostModel::TravelTime));
        prop_assert!(engine.uses_ch(CostModel::Length));
        for s in 0..n {
            for t in 0..n {
                let (s, t) = (VertexId(s as u32), VertexId(t as u32));
                if s == t {
                    continue;
                }
                // ...and the fallback is plain Dijkstra: identical paths,
                // not merely identical costs.
                let plain = shortest_path(&g, s, t, cost);
                let fell_back = engine.shortest_path(s, t, cost);
                match (&plain, &fell_back) {
                    (Some(a), Some(b)) => {
                        prop_assert_eq!(a.vertices(), b.vertices());
                        prop_assert_eq!(a.edges(), b.edges());
                    }
                    (None, None) => {}
                    _ => prop_assert!(false, "reachability diverged on {:?}->{:?}", s, t),
                }
            }
        }
    }

    #[test]
    fn ch_interleaved_metrics_never_leak_between_queries(
        n in 3usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 2..30),
    ) {
        // Alternating CH-covered (Length) and fallback (TravelTime /
        // Custom) queries on one engine must each match their plain
        // counterpart — the CH scratch state must never bleed into a
        // query it is invalid for.
        let g = build_graph(n, &coords, &edges);
        let (_ch, mut engine) = ch_engine(&g);
        let custom: Vec<f64> = (0..g.edge_count()).map(|i| 2.0 + (i % 5) as f64).collect();
        for s in 0..n.min(4) {
            for t in 0..n {
                let (s, t) = (VertexId(s as u32), VertexId(t as u32));
                if s == t {
                    continue;
                }
                for cost in [CostModel::Length, CostModel::TravelTime, CostModel::Custom(&custom)] {
                    let plain = shortest_path(&g, s, t, cost);
                    let mixed = engine.shortest_path(s, t, cost);
                    prop_assert_eq!(
                        cost_of(&g, &plain, cost),
                        cost_of(&g, &mixed, cost),
                        "interleaved {:?}->{:?} diverged", s, t
                    );
                }
            }
        }
    }

    #[test]
    fn ch_unpacked_paths_are_contiguous_edge_sequences(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..30),
    ) {
        // Every returned path must be a contiguous chain of real EdgeIds
        // whose summed lengths equal the reported distance — shortcut
        // unpacking cannot drop, duplicate or reorder edges.
        let g = build_graph(n, &coords, &edges);
        let (_ch, mut engine) = ch_engine(&g);
        for s in 0..n {
            for t in 0..n {
                let (s, t) = (VertexId(s as u32), VertexId(t as u32));
                if s == t {
                    continue;
                }
                let Some(p) = engine.shortest_path(s, t, CostModel::Length) else {
                    continue;
                };
                p.validate(&g).expect("unpacked path must validate");
                let mut cur = s;
                for &e in p.edges() {
                    let rec = g.edge(e);
                    prop_assert_eq!(rec.from, cur, "edges must chain contiguously");
                    cur = rec.to;
                }
                prop_assert_eq!(cur, t);
                let cost = engine
                    .shortest_path_cost(s, t, CostModel::Length)
                    .expect("path exists, cost probe must agree");
                prop_assert_eq!(p.length_m(&g), cost, "path length != probed cost");
            }
        }
    }
}

/// Deterministic companion: disconnected components must stay
/// unreachable through the CH in every entry point.
#[test]
fn ch_disconnected_components_stay_exact() {
    let mut b = GraphBuilder::new();
    let a0 = b.add_vertex(Point::new(0.0, 0.0));
    let a1 = b.add_vertex(Point::new(120.0, 0.0));
    let a2 = b.add_vertex(Point::new(240.0, 0.0));
    let c0 = b.add_vertex(Point::new(0.0, 7000.0));
    let c1 = b.add_vertex(Point::new(120.0, 7000.0));
    let attrs = |w: f64| EdgeAttrs::with_default_speed(w, RoadCategory::Rural);
    b.add_bidirectional(a0, a1, attrs(120.0)).unwrap();
    b.add_bidirectional(a1, a2, attrs(120.0)).unwrap();
    b.add_bidirectional(c0, c1, attrs(120.0)).unwrap();
    let g = b.build();
    let (_ch, mut engine) = ch_engine(&g);
    // Within a component: exact.
    let p = engine.shortest_path(a0, a2, CostModel::Length).unwrap();
    assert_eq!(p.cost(&g, CostModel::Length), 240.0);
    // Across components: unreachable in every CH-dispatched entry point.
    assert!(engine.shortest_path(a0, c1, CostModel::Length).is_none());
    assert!(engine
        .astar_shortest_path(a0, c1, CostModel::Length)
        .is_none());
    assert!(engine
        .bidirectional_shortest_path(c0, a2, CostModel::Length)
        .is_none());
    assert!(engine
        .shortest_path_cost(a2, c0, CostModel::Length)
        .is_none());
    assert!(engine
        .yen_k_shortest(a0, c0, CostModel::Length, 3)
        .is_empty());
}

/// Deterministic companion: a reloaded (text round-tripped) hierarchy
/// keeps serving bit-identical answers through the engine.
#[test]
fn ch_survives_io_roundtrip_on_random_style_graph() {
    use pathrank::spatial::generators::{region_network, RegionConfig};
    use pathrank::spatial::io::{ch_from_str, ch_to_string};
    let g = region_network(&RegionConfig::small_test(), 5);
    let ch = ContractionHierarchy::build(&g, LandmarkMetric::Length, &ChConfig::default());
    let reloaded = Arc::new(ch_from_str(&ch_to_string(&ch)).unwrap());
    let mut a = QueryEngine::new(&g).with_ch(Arc::new(ch));
    let mut b = QueryEngine::new(&g).with_ch(reloaded);
    let n = g.vertex_count() as u32;
    for (s, t) in [(0, n - 1), (n / 2, 1), (n / 3, 2 * n / 3)] {
        let (s, t) = (VertexId(s), VertexId(t));
        let pa = a.shortest_path(s, t, CostModel::Length);
        let pb = b.shortest_path(s, t, CostModel::Length);
        assert_eq!(
            pa.map(|p| p.edges().to_vec()),
            pb.map(|p| p.edges().to_vec()),
            "reloaded CH diverged on {s:?}->{t:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A customizable CH must stay exact through arbitrary rounds of
    /// live weight perturbation: after every re-customization on the
    /// fixed topology, one-to-one costs are bit-identical to a fresh
    /// Dijkstra on the perturbed weights. Speeds are drawn from
    /// {0.9, 1.8, 3.6} km/h so travel times are exactly {4, 2, 1} times
    /// the integer lengths — integer-valued, immune to tie-break noise.
    #[test]
    fn cch_costs_bit_identical_across_perturbation_rounds(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..30),
        salts in proptest::collection::vec(0u64..1000, 2..4),
    ) {
        let mut g = build_graph(n, &coords, &edges);
        if g.edge_count() == 0 {
            return Ok(());
        }
        // Metric-independent: built once, reused across every round.
        let topo = Arc::new(CchTopology::build(&g, &CchConfig { threads: 2 }));
        for (round, &salt) in salts.iter().enumerate() {
            let speeds: Vec<(EdgeId, f64)> = (0..g.edge_count())
                .map(|i| {
                    let pick = (i as u64).wrapping_mul(31).wrapping_add(salt) % 3;
                    (EdgeId(i as u32), [0.9, 1.8, 3.6][pick as usize])
                })
                .collect();
            let before = g.weights_epoch();
            let delta = g.set_edge_speeds(&speeds);
            // No-op rounds (a repeated salt re-installs the same
            // speeds) must not bump the epoch; effective rounds bump
            // it exactly once.
            let expected = before + u64::from(!delta.is_empty());
            prop_assert_eq!(g.weights_epoch(), expected);
            let cch = Arc::new(topo.customize(&g, &CostModel::TravelTime));
            prop_assert_eq!(cch.weights_epoch(), g.weights_epoch());
            let mut engine = QueryEngine::new(&g).with_cch(Arc::clone(&cch));
            prop_assert_eq!(
                engine.backend_for(CostModel::TravelTime),
                SearchBackend::Cch
            );
            // The customization covers TravelTime only; Length must not
            // be served off it.
            prop_assert_eq!(engine.backend_for(CostModel::Length), SearchBackend::Plain);
            for s in 0..n {
                for t in 0..n {
                    let (s, t) = (VertexId(s as u32), VertexId(t as u32));
                    if s == t {
                        continue;
                    }
                    let plain = shortest_path(&g, s, t, CostModel::TravelTime);
                    let fast = engine.shortest_path(s, t, CostModel::TravelTime);
                    if let Some(p) = &fast {
                        p.validate(&g).expect("CCH paths must be graph-valid");
                    }
                    prop_assert_eq!(
                        cost_of(&g, &plain, CostModel::TravelTime).to_bits(),
                        cost_of(&g, &fast, CostModel::TravelTime).to_bits(),
                        "round {} CCH diverged on {:?}->{:?}", round, s, t
                    );
                    let probe = engine.shortest_path_cost(s, t, CostModel::TravelTime);
                    prop_assert_eq!(
                        plain.as_ref().map(|p| p.cost(&g, CostModel::TravelTime).to_bits()),
                        probe.map(f64::to_bits),
                        "round {} CCH cost probe diverged on {:?}->{:?}", round, s, t
                    );
                }
            }
        }
    }

    /// `CostModel::Custom` slices are the CCH's home turf: a
    /// customization built from exactly that weight vector serves it
    /// (gated bitwise), any other slice falls back to plain searches.
    #[test]
    fn cch_custom_weight_vectors_bit_identical(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..30),
        salt in 1u32..40,
    ) {
        let g = build_graph(n, &coords, &edges);
        if g.edge_count() == 0 {
            return Ok(());
        }
        let custom: Vec<f64> = (0..g.edge_count())
            .map(|i| 1.0 + ((i as u32 * salt) % 17) as f64)
            .collect();
        let topo = Arc::new(CchTopology::build(&g, &CchConfig { threads: 2 }));
        let cch = Arc::new(topo.customize_weights(&g, &custom));
        let mut engine = QueryEngine::new(&g).with_cch(Arc::clone(&cch));
        let cost = CostModel::Custom(&custom);
        prop_assert_eq!(engine.backend_for(cost), SearchBackend::Cch);
        // A different slice (even by one entry) must not be served.
        let mut other = custom.clone();
        other[0] += 1.0;
        prop_assert_eq!(
            engine.backend_for(CostModel::Custom(&other)),
            SearchBackend::Plain
        );
        prop_assert_eq!(engine.backend_for(CostModel::Length), SearchBackend::Plain);
        for s in 0..n {
            for t in 0..n {
                let (s, t) = (VertexId(s as u32), VertexId(t as u32));
                if s == t {
                    continue;
                }
                let plain = shortest_path(&g, s, t, cost);
                let fast = engine.shortest_path(s, t, cost);
                prop_assert_eq!(
                    cost_of(&g, &plain, cost).to_bits(),
                    cost_of(&g, &fast, cost).to_bits(),
                    "custom-weight CCH diverged on {:?}->{:?}", s, t
                );
            }
        }
    }
}

/// Regression (weights-epoch gating): indexes customized or built before
/// a weight mutation must be skipped by the engine — never served — and
/// a re-customization at the new epoch restores the fast path.
#[test]
fn cch_stale_weights_epoch_is_never_served() {
    use pathrank::spatial::generators::{region_network, RegionConfig};
    let mut g = region_network(&RegionConfig::small_test(), 9);
    let topo = Arc::new(CchTopology::build(&g, &CchConfig::default()));
    let cch = Arc::new(topo.customize(&g, &CostModel::TravelTime));
    let ch = Arc::new(ContractionHierarchy::build(
        &g,
        LandmarkMetric::TravelTime,
        &ChConfig::default(),
    ));
    let table = Arc::new(LandmarkTable::build(
        &g,
        LandmarkMetric::TravelTime,
        &LandmarkConfig::default(),
    ));
    {
        let e = QueryEngine::new(&g)
            .with_cch(Arc::clone(&cch))
            .with_ch(Arc::clone(&ch))
            .with_landmarks(Arc::clone(&table));
        assert!(e.uses_ch(CostModel::TravelTime));
        assert!(e.uses_cch(CostModel::TravelTime));
        assert!(e.uses_alt(CostModel::TravelTime));
    }
    // Live traffic: one edge slows down. Every index above is now built
    // against stale weights.
    g.set_edge_speed(EdgeId(0), 5.0);
    let mut stale = QueryEngine::new(&g)
        .with_cch(Arc::clone(&cch))
        .with_ch(Arc::clone(&ch))
        .with_landmarks(Arc::clone(&table));
    assert!(!stale.uses_ch(CostModel::TravelTime));
    assert!(!stale.uses_cch(CostModel::TravelTime));
    assert!(!stale.uses_alt(CostModel::TravelTime));
    assert_eq!(
        stale.backend_for(CostModel::TravelTime),
        SearchBackend::Plain,
        "a stale index must never serve a mutated graph"
    );
    // The fallback still answers exactly (it reads the live weights).
    let n = g.vertex_count() as u32;
    for (s, t) in [(0, n - 1), (n / 2, 1)] {
        let (s, t) = (VertexId(s), VertexId(t));
        let plain = shortest_path(&g, s, t, CostModel::TravelTime);
        let fast = stale.shortest_path(s, t, CostModel::TravelTime);
        assert_eq!(
            cost_of(&g, &plain, CostModel::TravelTime).to_bits(),
            cost_of(&g, &fast, CostModel::TravelTime).to_bits(),
            "fallback diverged on {s:?}->{t:?}"
        );
    }
    // Re-customizing the same topology at the new epoch restores the
    // CCH fast path — no rebuild required.
    let fresh = Arc::new(topo.customize(&g, &CostModel::TravelTime));
    assert_eq!(fresh.weights_epoch(), g.weights_epoch());
    let mut live = QueryEngine::new(&g).with_cch(Arc::clone(&fresh));
    assert_eq!(live.backend_for(CostModel::TravelTime), SearchBackend::Cch);
    for (s, t) in [(0, n - 1), (n / 2, 1)] {
        let (s, t) = (VertexId(s), VertexId(t));
        let plain = shortest_path(&g, s, t, CostModel::TravelTime);
        let fast = live.shortest_path(s, t, CostModel::TravelTime);
        assert_eq!(
            cost_of(&g, &plain, CostModel::TravelTime).to_bits(),
            cost_of(&g, &fast, CostModel::TravelTime).to_bits(),
            "re-customized CCH diverged on {s:?}->{t:?}"
        );
    }
}
