//! Property-test harness locking in ALT exactness.
//!
//! A landmark heuristic is only an optimisation if it can never change an
//! answer. These properties drive ALT-guided engines against the plain
//! (heuristic-free) free functions on random generator graphs and require
//! **bit-identical costs** — not approximate equality. Edge weights are
//! small integers, so every equal-cost path sums to exactly the same
//! `f64` and float tie-break noise cannot mask a real divergence; vertex
//! coordinates are drawn independently of the weights, so the Euclidean
//! floor inside the ALT heuristic is deliberately mis-scaled and the
//! landmark bounds do the work (including proving targets unreachable
//! through infinite bounds).
//!
//! Covered regimes, per the issue:
//! * one-to-one A* and bidirectional search vs plain Dijkstra;
//! * full Yen enumerations (every spur search ALT-guided) vs plain Yen;
//! * constrained searches under random banned vertex/edge sets (bans only
//!   shrink the graph, so full-graph lower bounds must stay admissible);
//! * `CostModel::Custom` slices, where the precomputed metric is invalid
//!   and the engine must *fall back* — asserted both by `uses_alt` and by
//!   bitwise path equality with the plain engine.

use std::sync::Arc;

use pathrank::spatial::algo::dijkstra::{constrained_shortest_path, shortest_path};
use pathrank::spatial::algo::engine::QueryEngine;
use pathrank::spatial::algo::landmarks::{LandmarkConfig, LandmarkMetric, LandmarkTable};
use pathrank::spatial::algo::yen::yen_k_shortest;
use pathrank::spatial::builder::GraphBuilder;
use pathrank::spatial::geometry::Point;
use pathrank::spatial::graph::{CostModel, EdgeAttrs, Graph, RoadCategory, VertexId};
use pathrank::spatial::util::BitSet;
use proptest::prelude::*;

/// Builds a random directed graph from proptest-drawn raw material:
/// `n` vertices with the given coordinates and deduplicated directed
/// edges with integer-metre lengths.
fn build_graph(n: usize, coords: &[(f64, f64)], edges: &[(usize, usize, u32)]) -> Graph {
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..n)
        .map(|i| b.add_vertex(Point::new(coords[i].0, coords[i].1)))
        .collect();
    let mut seen = std::collections::HashSet::new();
    for &(f, t, w) in edges {
        let (f, t) = (f % n, t % n);
        if f != t && seen.insert((f, t)) {
            b.add_edge(
                vs[f],
                vs[t],
                EdgeAttrs::with_default_speed(w as f64, RoadCategory::Rural),
            )
            .unwrap();
        }
    }
    b.build()
}

fn alt_engine(g: &Graph) -> (Arc<LandmarkTable>, QueryEngine<'_>) {
    let table = Arc::new(LandmarkTable::build(
        g,
        LandmarkMetric::Length,
        &LandmarkConfig {
            count: 3,
            seed: 0xa17,
            threads: 2,
        },
    ));
    let engine = QueryEngine::new(g).with_landmarks(Arc::clone(&table));
    (table, engine)
}

/// Exact cost of an optional path under a cost model (`None` ⇒ NaN-free
/// sentinel), so reachability and cost compare in one assert.
fn cost_of(g: &Graph, p: &Option<pathrank::spatial::path::Path>, cost: CostModel<'_>) -> f64 {
    p.as_ref().map_or(-1.0, |p| p.cost(g, cost))
}

/// Strategy fragments shared by every property: vertex count, one
/// coordinate and one edge tuple.
const MAX_N: usize = 10;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn alt_one_to_one_costs_bit_identical_to_dijkstra(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..30),
    ) {
        let g = build_graph(n, &coords, &edges);
        let (_table, mut engine) = alt_engine(&g);
        for s in 0..n {
            for t in 0..n {
                let (s, t) = (VertexId(s as u32), VertexId(t as u32));
                if s == t {
                    continue;
                }
                let plain = shortest_path(&g, s, t, CostModel::Length);
                let astar = engine.astar_shortest_path(s, t, CostModel::Length);
                prop_assert_eq!(
                    cost_of(&g, &plain, CostModel::Length),
                    cost_of(&g, &astar, CostModel::Length),
                    "A* diverged on {:?}->{:?}", s, t
                );
                let bidi = engine.bidirectional_shortest_path(s, t, CostModel::Length);
                prop_assert_eq!(
                    cost_of(&g, &plain, CostModel::Length),
                    cost_of(&g, &bidi, CostModel::Length),
                    "bidirectional diverged on {:?}->{:?}", s, t
                );
                // The cost probe (map matching's transition model) too.
                let probe = engine.shortest_path_cost(s, t, CostModel::Length);
                prop_assert_eq!(
                    plain.as_ref().map(|p| p.cost(&g, CostModel::Length)),
                    probe,
                    "cost probe diverged on {:?}->{:?}", s, t
                );
            }
        }
    }

    #[test]
    fn alt_yen_cost_sequences_bit_identical(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..26),
        k in 1usize..12,
    ) {
        let g = build_graph(n, &coords, &edges);
        let (_table, mut engine) = alt_engine(&g);
        let s = VertexId(0);
        let t = VertexId((n - 1) as u32);
        let plain: Vec<f64> = yen_k_shortest(&g, s, t, CostModel::Length, k)
            .into_iter()
            .map(|(_, c)| c)
            .collect();
        let alt: Vec<f64> = engine
            .yen_k_shortest(s, t, CostModel::Length, k)
            .into_iter()
            .map(|(_, c)| c)
            .collect();
        prop_assert_eq!(plain, alt, "Yen cost sequence diverged");
    }

    #[test]
    fn alt_constrained_searches_respect_bans_and_match_dijkstra(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..30),
        banned_v in proptest::collection::vec(0usize..MAX_N, 0..4),
        banned_e in proptest::collection::vec(0usize..64, 0..8),
    ) {
        let g = build_graph(n, &coords, &edges);
        let (_table, mut engine) = alt_engine(&g);
        let mut bv = BitSet::new(g.vertex_count());
        for v in banned_v {
            bv.insert((v % n) as u32);
        }
        let mut be = BitSet::new(g.edge_count());
        for e in banned_e {
            if g.edge_count() > 0 {
                be.insert((e % g.edge_count()) as u32);
            }
        }
        for s in 0..n {
            for t in 0..n {
                let (s, t) = (VertexId(s as u32), VertexId(t as u32));
                let plain = constrained_shortest_path(&g, s, t, CostModel::Length, &bv, &be);
                let alt = engine.constrained_shortest_path(s, t, CostModel::Length, &bv, &be);
                prop_assert_eq!(
                    cost_of(&g, &plain, CostModel::Length),
                    cost_of(&g, &alt, CostModel::Length),
                    "constrained search diverged on {:?}->{:?}", s, t
                );
                if let Some(p) = &alt {
                    for v in p.vertices() {
                        prop_assert!(!bv.contains(v.0), "banned vertex on path");
                    }
                    for e in p.edges() {
                        prop_assert!(!be.contains(e.0), "banned edge on path");
                    }
                }
            }
        }
    }

    #[test]
    fn alt_custom_cost_slices_engage_fallback(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..30),
        salt in 1u32..40,
    ) {
        let g = build_graph(n, &coords, &edges);
        let (_table, mut engine) = alt_engine(&g);
        let custom: Vec<f64> = (0..g.edge_count())
            .map(|i| 1.0 + ((i as u32 * salt) % 17) as f64)
            .collect();
        let cost = CostModel::Custom(&custom);
        // The precomputed length metric must not be consulted...
        prop_assert!(!engine.uses_alt(cost));
        prop_assert!(engine.uses_alt(CostModel::Length));
        for s in 0..n {
            for t in 0..n {
                let (s, t) = (VertexId(s as u32), VertexId(t as u32));
                if s == t {
                    continue;
                }
                // ...and the fallback is plain Dijkstra: identical paths,
                // not merely identical costs.
                let plain = shortest_path(&g, s, t, cost);
                let fell_back = engine.shortest_path(s, t, cost);
                match (&plain, &fell_back) {
                    (Some(a), Some(b)) => {
                        prop_assert_eq!(a.vertices(), b.vertices());
                        prop_assert_eq!(a.edges(), b.edges());
                    }
                    (None, None) => {}
                    _ => prop_assert!(false, "reachability diverged on {:?}->{:?}", s, t),
                }
            }
        }
    }

    #[test]
    fn alt_interleaved_metrics_never_leak_between_queries(
        n in 3usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 2..30),
    ) {
        // Alternating ALT-covered (Length) and fallback (TravelTime /
        // Custom) queries on one engine must each match their plain
        // counterpart — the cached target vectors and active-landmark
        // sets must never bleed into a query they are invalid for.
        let g = build_graph(n, &coords, &edges);
        let (_table, mut engine) = alt_engine(&g);
        let custom: Vec<f64> = (0..g.edge_count()).map(|i| 2.0 + (i % 5) as f64).collect();
        for s in 0..n.min(4) {
            for t in 0..n {
                let (s, t) = (VertexId(s as u32), VertexId(t as u32));
                if s == t {
                    continue;
                }
                for cost in [CostModel::Length, CostModel::TravelTime, CostModel::Custom(&custom)] {
                    let plain = shortest_path(&g, s, t, cost);
                    let mixed = engine.astar_shortest_path(s, t, cost);
                    prop_assert_eq!(
                        cost_of(&g, &plain, cost),
                        cost_of(&g, &mixed, cost),
                        "interleaved {:?}->{:?} diverged", s, t
                    );
                }
            }
        }
    }
}

/// Deterministic companion: disconnected components exercise the
/// infinite-bound branch (`d(L, t)` finite, `d(L, v)` infinite proves
/// unreachability) without NaN poisoning or wrong `None`s.
#[test]
fn alt_disconnected_components_stay_exact() {
    let mut b = GraphBuilder::new();
    let a0 = b.add_vertex(Point::new(0.0, 0.0));
    let a1 = b.add_vertex(Point::new(120.0, 0.0));
    let a2 = b.add_vertex(Point::new(240.0, 0.0));
    let c0 = b.add_vertex(Point::new(0.0, 7000.0));
    let c1 = b.add_vertex(Point::new(120.0, 7000.0));
    let attrs = |w: f64| EdgeAttrs::with_default_speed(w, RoadCategory::Rural);
    b.add_bidirectional(a0, a1, attrs(120.0)).unwrap();
    b.add_bidirectional(a1, a2, attrs(120.0)).unwrap();
    b.add_bidirectional(c0, c1, attrs(120.0)).unwrap();
    let g = b.build();
    let (_table, mut engine) = alt_engine(&g);
    // Within a component: exact.
    let p = engine
        .astar_shortest_path(a0, a2, CostModel::Length)
        .unwrap();
    assert_eq!(p.cost(&g, CostModel::Length), 240.0);
    // Across components: unreachable in every guided mode.
    assert!(engine
        .astar_shortest_path(a0, c1, CostModel::Length)
        .is_none());
    assert!(engine
        .bidirectional_shortest_path(c0, a2, CostModel::Length)
        .is_none());
    assert!(engine
        .shortest_path_cost(a2, c0, CostModel::Length)
        .is_none());
    assert!(engine
        .yen_k_shortest(a0, c0, CostModel::Length, 3)
        .is_empty());
}
