//! Determinism: the entire pipeline — network generation, simulation,
//! node2vec, candidate generation, training, evaluation — must be exactly
//! reproducible from the master seed.

use pathrank::core::candidates::{CandidateConfig, Strategy};
use pathrank::core::model::ModelConfig;
use pathrank::core::pipeline::{ExperimentConfig, Workbench};
use pathrank::core::trainer::TrainConfig;

fn run_once(seed: u64, threads: usize) -> (f64, f64, f64, f64) {
    let mut cfg = ExperimentConfig::small_test();
    cfg.seed = seed;
    cfg.threads = threads;
    let mut wb = Workbench::new(cfg);
    let ccfg = CandidateConfig {
        k: 4,
        ..CandidateConfig::paper_default(Strategy::DTkDI)
    };
    let tcfg = TrainConfig {
        epochs: 3,
        threads,
        ..TrainConfig::default()
    };
    let result = wb.run(ModelConfig::paper_default(16), ccfg, tcfg);
    (
        result.eval.mae,
        result.eval.mare,
        result.eval.tau,
        result.eval.rho,
    )
}

#[test]
fn identical_seeds_reproduce_identical_metrics() {
    let a = run_once(77, 1);
    let b = run_once(77, 1);
    assert_eq!(a, b, "single-threaded runs must be bit-identical");
}

#[test]
fn different_seeds_differ() {
    let a = run_once(77, 1);
    let b = run_once(78, 1);
    assert_ne!(a, b, "different seeds must explore different environments");
}

#[test]
fn thread_count_changes_results_only_marginally() {
    // Parallel gradient merging reorders float additions, so allow tiny
    // numeric drift but nothing structural.
    let a = run_once(77, 1);
    let b = run_once(77, 2);
    assert!(
        (a.0 - b.0).abs() < 5e-2,
        "MAE drift too large: {} vs {}",
        a.0,
        b.0
    );
    assert!(
        (a.2 - b.2).abs() < 0.3,
        "tau drift too large: {} vs {}",
        a.2,
        b.2
    );
}
