//! Property-test harness pinning the R-tree's candidate sets to ground
//! truth.
//!
//! Replacing the uniform-grid snapping index with the packed STR R-tree
//! is only an optimisation if it can never change which edges a GPS fix
//! snaps to. These properties drive [`RTree::edges_within`] against a
//! brute-force scan over every edge on random generator graphs, and the
//! R-tree-backed [`MapMatcher`] against the grid-backed one on
//! simulated fleets, requiring **identical candidate sets and identical
//! matched edge sequences** — not merely similar ones.
//!
//! Covered regimes, per the issue:
//! * `edges_within` equals the brute-force in-radius set (ascending
//!   `EdgeId`, deduplicated) across random probe points and radii,
//!   including radius 0 and probes far outside the network;
//! * the `_into` variant reuses its output buffer without leaking stale
//!   candidates between queries;
//! * whole map-matched trips: grid-built and R-tree-built matchers
//!   produce identical edge sequences on the same traces, across cell
//!   sizes and candidate radii;
//! * polyline geometry: both index builds see the true geometry (a
//!   hairpin detour), not just the straight chord.

use pathrank::spatial::builder::GraphBuilder;
use pathrank::spatial::generators::{region_network, RegionConfig};
use pathrank::spatial::geometry::{point_segment_distance, Point};
use pathrank::spatial::graph::{EdgeAttrs, EdgeId, Graph, RoadCategory, VertexId};
use pathrank::spatial::rtree::RTree;
use pathrank::traj::mapmatch::{MapMatchConfig, MapMatcher};
use pathrank::traj::simulator::{simulate_fleet, SimulationConfig};
use proptest::prelude::*;

/// Builds a random directed graph from proptest-drawn raw material.
fn build_graph(n: usize, coords: &[(f64, f64)], edges: &[(usize, usize, u32)]) -> Graph {
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..n)
        .map(|i| b.add_vertex(Point::new(coords[i].0, coords[i].1)))
        .collect();
    let mut seen = std::collections::HashSet::new();
    for &(f, t, w) in edges {
        let (f, t) = (f % n, t % n);
        if f != t && seen.insert((f, t)) {
            b.add_edge(
                vs[f],
                vs[t],
                EdgeAttrs::with_default_speed(w as f64, RoadCategory::Rural),
            )
            .unwrap();
        }
    }
    b.build()
}

/// Ground truth: every edge whose segment (straight chord) lies within
/// `radius_m` of `p`, ascending by id.
fn brute_force_within(g: &Graph, p: &Point, radius_m: f64) -> Vec<EdgeId> {
    (0..g.edge_count() as u32)
        .map(EdgeId)
        .filter(|&e| {
            let rec = g.edge(e);
            point_segment_distance(p, &g.coord(rec.from), &g.coord(rec.to)) <= radius_m
        })
        .collect()
}

const MAX_N: usize = 12;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rtree_edges_within_equals_brute_force(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..36),
        probes in proptest::collection::vec((-500.0f64..5500.0, -500.0f64..5500.0), 1..12),
        radius in 1.0f64..2000.0,
    ) {
        let g = build_graph(n, &coords, &edges);
        let rt = RTree::build(&g);
        prop_assert_eq!(rt.len(), g.edge_count());
        let mut out = vec![EdgeId(u32::MAX)]; // stale content must be cleared
        for (x, y) in probes {
            let p = Point::new(x, y);
            // Radius 0 (degenerate: only edges the probe sits on) is
            // checked alongside the drawn radius on every probe.
            for r in [0.0, radius] {
                let expect = brute_force_within(&g, &p, r);
                let got = rt.edges_within(&p, r);
                prop_assert_eq!(
                    got.as_slice(),
                    expect.as_slice(),
                    "edges_within diverged at ({}, {}) r={}", x, y, r
                );
                rt.edges_within_into(&p, r, &mut out);
                prop_assert_eq!(
                    out.as_slice(),
                    expect.as_slice(),
                    "edges_within_into leaked stale candidates at ({}, {})", x, y
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whole map-matched trips: the grid-built and R-tree-built matchers
    /// must produce identical edge sequences for every simulated trace,
    /// across candidate radii (and thereby grid cell sizes, which follow
    /// the radius).
    #[test]
    fn rtree_mapmatch_sequences_identical_to_grid(
        region_seed in 0u64..500,
        fleet_seed in 0u64..500,
        radius in 40.0f64..120.0,
    ) {
        let g = region_network(&RegionConfig::small_test(), region_seed);
        let sim = SimulationConfig {
            n_vehicles: 3,
            trips_per_vehicle: 1,
            ..SimulationConfig::small_test()
        };
        let trips = simulate_fleet(&g, &sim, fleet_seed);
        let cfg = MapMatchConfig {
            candidate_radius_m: radius,
            ..MapMatchConfig::default()
        };
        let mut rt = MapMatcher::new(&g, cfg.clone());
        let mut grid = MapMatcher::new_with_grid(&g, cfg);
        for trip in &trips {
            let a = rt.match_trace(&trip.trace).map(|p| p.edges().to_vec());
            let b = grid.match_trace(&trip.trace).map(|p| p.edges().to_vec());
            prop_assert_eq!(a, b, "matched sequence diverged (region {}, fleet {})",
                region_seed, fleet_seed);
        }
    }
}

/// Deterministic companion: with polyline geometry attached, both index
/// builds must expand edge bounding volumes over the true geometry — a
/// hairpin detour far off the chord snaps identically through either.
#[test]
fn rtree_geometry_hairpin_candidates_match_grid() {
    // One straight corridor a->b->c plus a parallel edge a->c whose true
    // geometry detours 400 m north of the chord midway.
    let mut b = GraphBuilder::new();
    let va = b.add_vertex(Point::new(0.0, 0.0));
    let vb = b.add_vertex(Point::new(500.0, 0.0));
    let vc = b.add_vertex(Point::new(1000.0, 0.0));
    let attrs = |w: f64| EdgeAttrs::with_default_speed(w, RoadCategory::Rural);
    b.add_bidirectional(va, vb, attrs(500.0)).unwrap();
    b.add_bidirectional(vb, vc, attrs(500.0)).unwrap();
    let detour = b.add_bidirectional(va, vc, attrs(1900.0)).unwrap();
    let g = b.build();
    let mut geometry: Vec<Vec<Point>> = vec![Vec::new(); g.edge_count()];
    let hairpin = vec![
        Point::new(300.0, 200.0),
        Point::new(500.0, 400.0),
        Point::new(700.0, 200.0),
    ];
    geometry[detour.index()] = hairpin.clone();
    geometry[detour.index() + 1] = hairpin.into_iter().rev().collect();

    let cfg = MapMatchConfig::default();
    let rt = MapMatcher::new_with_geometry(&g, &geometry, cfg.clone());
    let grid = MapMatcher::new_with_grid_geometry(&g, &geometry, cfg.clone());
    // Probe next to the hairpin apex (far from every chord) and along
    // the corridor: both indexes must agree candidate-for-candidate.
    let mut a: Vec<EdgeId> = Vec::new();
    let mut b: Vec<EdgeId> = Vec::new();
    for p in [
        Point::new(500.0, 390.0),
        Point::new(300.0, 190.0),
        Point::new(250.0, 10.0),
        Point::new(990.0, -5.0),
    ] {
        rt.index()
            .edges_near_into(&p, cfg.candidate_radius_m, &mut a);
        grid.index()
            .edges_near_into(&p, cfg.candidate_radius_m, &mut b);
        // The grid returns a cell superset; the R-tree set (already
        // exact w.r.t. true geometry) must be contained in it.
        for e in &a {
            assert!(
                b.contains(e),
                "grid superset missing R-tree candidate {e:?} at {p:?}"
            );
        }
        assert!(!a.is_empty(), "probe at {p:?} found no candidates");
    }
    // Near the apex the detour edge itself must be a candidate.
    rt.index()
        .edges_near_into(&Point::new(500.0, 390.0), cfg.candidate_radius_m, &mut a);
    assert!(
        a.contains(&detour),
        "hairpin apex must snap to the detour edge through the R-tree"
    );
}
