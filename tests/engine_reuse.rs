//! Reuse-correctness suite for the generation-stamped query engine.
//!
//! The classic failure mode of reusable search state is the *stale
//! generation* bug: a slot written by query N is read by query N+k because
//! the reset was skipped or the stamp check is wrong. These tests hammer a
//! single [`QueryEngine`] with interleaved queries that maximise the
//! chance of such leakage — alternating cost models, sources, banned
//! vertex/edge sets and algorithms — and require **bit-identical** output
//! (vertex/edge id sequences and `f64` distances compared with `==`)
//! versus fresh-allocation runs.

use pathrank::spatial::algo::dijkstra::{
    constrained_shortest_path, shortest_path, shortest_path_tree,
};
use pathrank::spatial::algo::engine::QueryEngine;
use pathrank::spatial::algo::yen::yen_k_shortest;
use pathrank::spatial::algo::{astar_shortest_path, bidirectional_shortest_path};
use pathrank::spatial::generators::{grid_network, region_network, GridConfig, RegionConfig};
use pathrank::spatial::graph::{CostModel, Graph, VertexId};
use pathrank::spatial::path::Path;
use pathrank::spatial::util::BitSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_same_path(fresh: Option<Path>, reused: Option<Path>, ctx: &str) {
    match (fresh, reused) {
        (Some(a), Some(b)) => {
            assert_eq!(
                a.vertices(),
                b.vertices(),
                "vertex sequence diverged: {ctx}"
            );
            assert_eq!(a.edges(), b.edges(), "edge sequence diverged: {ctx}");
        }
        (None, None) => {}
        (a, b) => panic!("reachability diverged ({ctx}): fresh {a:?} vs reused {b:?}"),
    }
}

/// Deterministic per-iteration cost perturbation so interleaved custom
/// models differ from each other (a stale dist from model A is nearly
/// always wrong under model B).
fn custom_costs(g: &Graph, salt: u64) -> Vec<f64> {
    (0..g.edge_count())
        .map(|i| 1.0 + ((i as u64).wrapping_mul(2654435761).wrapping_add(salt * 97) % 1000) as f64)
        .collect()
}

#[test]
fn interleaved_queries_match_fresh_bit_for_bit() {
    let g = region_network(&RegionConfig::small_test(), 42);
    let n = g.vertex_count() as u32;
    let mut engine = QueryEngine::new(&g);
    let mut rng = StdRng::seed_from_u64(7);

    for round in 0..60u64 {
        let s = VertexId(rng.gen_range(0..n));
        let t = VertexId(rng.gen_range(0..n));
        let costs = custom_costs(&g, round);
        // Rotate through cost models so consecutive queries on the same
        // engine never share one.
        match round % 3 {
            0 => {
                let fresh = shortest_path(&g, s, t, CostModel::Length);
                let reused = engine.shortest_path(s, t, CostModel::Length);
                assert_same_path(fresh, reused, &format!("round {round} Length {s:?}->{t:?}"));
            }
            1 => {
                let fresh = shortest_path(&g, s, t, CostModel::TravelTime);
                let reused = engine.shortest_path(s, t, CostModel::TravelTime);
                assert_same_path(
                    fresh,
                    reused,
                    &format!("round {round} TravelTime {s:?}->{t:?}"),
                );
            }
            _ => {
                let fresh = shortest_path(&g, s, t, CostModel::Custom(&costs));
                let reused = engine.shortest_path(s, t, CostModel::Custom(&costs));
                assert_same_path(fresh, reused, &format!("round {round} Custom {s:?}->{t:?}"));
            }
        }
    }
}

#[test]
fn interleaved_banned_sets_match_fresh() {
    // Alternate banned vertex/edge sets (including empty ones) across a
    // reused engine: a leaked ban or a leaked distance both change paths.
    let g = grid_network(&GridConfig::small_test(), 13);
    let n = g.vertex_count() as u32;
    let mut engine = QueryEngine::new(&g);
    let mut rng = StdRng::seed_from_u64(99);

    for round in 0..40u64 {
        let s = VertexId(rng.gen_range(0..n));
        let t = VertexId(rng.gen_range(0..n));
        let mut bv = BitSet::new(g.vertex_count());
        let mut be = BitSet::new(g.edge_count());
        if round % 2 == 0 {
            for _ in 0..rng.gen_range(1..5usize) {
                bv.insert(rng.gen_range(0..n));
            }
            for _ in 0..rng.gen_range(1..7usize) {
                be.insert(rng.gen_range(0..g.edge_count() as u32));
            }
        }
        // Bit-identity is asserted fresh-engine vs reused-engine (same
        // algorithm); the free wrapper runs plain Dijkstra, which may
        // tie-break differently, so it is held to cost equality.
        let fresh =
            QueryEngine::new(&g).constrained_shortest_path(s, t, CostModel::Length, &bv, &be);
        let reused = engine.constrained_shortest_path(s, t, CostModel::Length, &bv, &be);
        let free = constrained_shortest_path(&g, s, t, CostModel::Length, &bv, &be);
        match (&free, &reused) {
            (Some(a), Some(b)) => assert!(
                (a.length_m(&g) - b.length_m(&g)).abs() < 1e-9,
                "round {round}: free Dijkstra vs engine cost mismatch"
            ),
            (None, None) => {}
            (a, b) => panic!("round {round}: reachability diverged: {a:?} vs {b:?}"),
        }
        assert_same_path(
            fresh,
            reused,
            &format!("round {round} constrained {s:?}->{t:?}"),
        );

        // Interleave an unconstrained query so ban-free state follows
        // ban-heavy state on the same space.
        let fresh = shortest_path(&g, t, s, CostModel::Length);
        let reused = engine.shortest_path(t, s, CostModel::Length);
        assert_same_path(
            fresh,
            reused,
            &format!("round {round} unconstrained {t:?}->{s:?}"),
        );
    }
}

#[test]
fn interleaved_algorithms_share_one_engine() {
    // Dijkstra, A*, bidirectional and one-to-all all run back-to-back on
    // one engine; each must equal its fresh counterpart. A* and
    // bidirectional guarantee equal *cost* (tie-breaking may differ), so
    // costs are compared exactly through path equality where specified
    // and through cost equality otherwise.
    let g = region_network(&RegionConfig::small_test(), 8);
    let n = g.vertex_count() as u32;
    let mut engine = QueryEngine::new(&g);
    let mut rng = StdRng::seed_from_u64(1234);

    for round in 0..25u64 {
        let s = VertexId(rng.gen_range(0..n));
        let t = VertexId(rng.gen_range(0..n));
        for cost in [CostModel::Length, CostModel::TravelTime] {
            let fresh = astar_shortest_path(&g, s, t, cost);
            let reused = engine.astar_shortest_path(s, t, cost);
            assert_same_path(fresh, reused, &format!("round {round} astar {s:?}->{t:?}"));

            let fresh = bidirectional_shortest_path(&g, s, t, cost);
            let reused = engine.bidirectional_shortest_path(s, t, cost);
            assert_same_path(fresh, reused, &format!("round {round} bidir {s:?}->{t:?}"));
        }
        // One-to-all: distances and parents must be bit-identical.
        let fresh_tree = shortest_path_tree(&g, s, CostModel::Length);
        let view = engine.one_to_all(s, CostModel::Length);
        for v in g.vertices() {
            assert!(
                fresh_tree.dist[v.index()] == view.dist(v)
                    || (fresh_tree.dist[v.index()].is_infinite() && view.dist(v).is_infinite()),
                "round {round}: dist[{v:?}] {} vs {}",
                fresh_tree.dist[v.index()],
                view.dist(v)
            );
            assert_eq!(
                fresh_tree.parent[v.index()],
                view.parent_of(v),
                "round {round} {v:?}"
            );
        }
    }
}

#[test]
fn yen_on_engine_is_deterministic_and_matches_fresh() {
    // Mirrors tests/determinism.rs for the engine path: repeated engine
    // runs must be identical to each other *and* to the fresh-allocation
    // enumeration, including after unrelated queries poisoned the space.
    let g = region_network(&RegionConfig::small_test(), 3);
    let n = g.vertex_count() as u32;
    let pairs = [(0, n - 1), (3, n / 2), (n / 4, n - 2)];

    for &(a, b) in &pairs {
        let (s, t) = (VertexId(a), VertexId(b));
        let fresh = yen_k_shortest(&g, s, t, CostModel::Length, 8);

        let mut engine = QueryEngine::new(&g);
        let first = engine.yen_k_shortest(s, t, CostModel::Length, 8);

        // Poison the search space with unrelated interleaved queries...
        engine.shortest_path(t, s, CostModel::TravelTime);
        engine.one_to_all(VertexId(0), CostModel::Length);
        let costs = custom_costs(&g, 5);
        engine.shortest_path(s, t, CostModel::Custom(&costs));

        // ...then the same top-k must come out again, bit-identical.
        let second = engine.yen_k_shortest(s, t, CostModel::Length, 8);

        assert_eq!(fresh.len(), first.len());
        assert_eq!(first.len(), second.len());
        for ((fp, fc), ((p1, c1), (p2, c2))) in fresh.iter().zip(first.iter().zip(second.iter())) {
            assert_eq!(fp.vertices(), p1.vertices(), "fresh vs engine run 1");
            assert_eq!(p1.vertices(), p2.vertices(), "engine run 1 vs run 2");
            assert!(
                fc == c1 && c1 == c2,
                "costs must be bit-identical: {fc} {c1} {c2}"
            );
        }
    }
}

#[test]
fn tree_views_reflect_only_the_latest_query() {
    // Run a broad query, then a narrow early-exit query: the view of the
    // narrow query must not resurrect reachability from the broad one.
    let g = grid_network(&GridConfig::small_test(), 4);
    let mut engine = QueryEngine::new(&g);

    let broad: Vec<f64> = {
        let view = engine.one_to_all(VertexId(0), CostModel::Length);
        g.vertices().map(|v| view.dist(v)).collect()
    };
    assert!(broad.iter().all(|d| d.is_finite()), "grid is connected");

    // Early-exit one-to-one towards an adjacent vertex settles only a tiny
    // neighbourhood; far corners stay unreached *in this epoch*.
    engine
        .shortest_path(VertexId(0), VertexId(1), CostModel::Length)
        .unwrap();
    let partial_tree = engine.shortest_path_tree(VertexId(0), CostModel::Length);
    // A full tree query afterwards must again reach everything with the
    // same distances as the first broad query.
    for (v, &expect) in g.vertices().zip(broad.iter()) {
        assert!(
            partial_tree.dist[v.index()] == expect,
            "{v:?}: {} vs {expect}",
            partial_tree.dist[v.index()]
        );
    }
}
