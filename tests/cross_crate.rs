//! Cross-crate integration: invariants that only hold when the substrates
//! compose correctly.

use pathrank::core::candidates::{generate_group, CandidateConfig, Strategy};
use pathrank::embed::node2vec::{train_node2vec, Node2VecConfig};
use pathrank::nn::matrix::Matrix;
use pathrank::spatial::algo::dijkstra::shortest_path;
use pathrank::spatial::algo::yen::yen_k_shortest;
use pathrank::spatial::generators::{region_network, RegionConfig};
use pathrank::spatial::graph::{CostModel, Graph, VertexId};
use pathrank::spatial::io::{graph_from_str, graph_to_string};
use pathrank::spatial::similarity::{weighted_jaccard, EdgeWeight};
use pathrank::traj::mapmatch::{map_match, MapMatchConfig};
use pathrank::traj::simulator::{simulate_fleet, SimulationConfig};

fn region() -> Graph {
    region_network(&RegionConfig::small_test(), 33)
}

#[test]
fn graph_serialisation_preserves_routing() {
    let g = region();
    let restored = graph_from_str(&graph_to_string(&g)).unwrap();
    let s = VertexId(1);
    let t = VertexId((g.vertex_count() - 2) as u32);
    let a = shortest_path(&g, s, t, CostModel::Length).unwrap();
    let b = shortest_path(&restored, s, t, CostModel::Length).unwrap();
    assert!(
        a.same_route(&b),
        "routing must be identical on the restored graph"
    );
}

#[test]
fn candidate_groups_contain_the_optimal_path() {
    // The cheapest path must be a candidate under both strategies: TkDI by
    // definition, D-TkDI because the first enumerated path is always kept.
    let g = region();
    let trips = simulate_fleet(&g, &SimulationConfig::small_test(), 34);
    let trajectory = &trips[0].path;
    let sp = shortest_path(
        &g,
        trajectory.source(),
        trajectory.target(),
        CostModel::Length,
    )
    .expect("connected");
    for strategy in [Strategy::TkDI, Strategy::DTkDI] {
        let cfg = CandidateConfig {
            k: 5,
            ..CandidateConfig::paper_default(strategy)
        };
        let group = generate_group(&g, trajectory, &cfg);
        assert!(
            group.candidates.iter().any(|c| c.path.same_route(&sp)),
            "{strategy:?} must include the shortest path"
        );
    }
}

#[test]
fn simulated_trajectory_scores_higher_than_distant_alternatives() {
    // The trajectory labels must order candidates sensibly: the trajectory
    // itself gets 1.0 and every other candidate strictly less unless it is
    // route-identical.
    let g = region();
    let trips = simulate_fleet(&g, &SimulationConfig::small_test(), 35);
    let cfg = CandidateConfig {
        k: 6,
        ..CandidateConfig::paper_default(Strategy::DTkDI)
    };
    for trip in trips.iter().take(5) {
        let group = generate_group(&g, &trip.path, &cfg);
        assert_eq!(group.candidates[0].score, 1.0);
        for c in &group.candidates[1..] {
            assert!(
                c.score < 1.0 || c.path.same_route(&trip.path),
                "only the trajectory route may score 1.0"
            );
        }
    }
}

#[test]
fn map_matched_path_scores_near_original() {
    // Map matching feeds training: the matched path's similarity to the
    // ground-truth driven path must be high (i.e. labels barely change if
    // we train from matched instead of true paths).
    let g = region();
    let sim = SimulationConfig {
        gps_noise_std_m: 5.0,
        ..SimulationConfig::small_test()
    };
    let trips = simulate_fleet(&g, &sim, 36);
    let mm = MapMatchConfig {
        sigma_m: 6.0,
        ..MapMatchConfig::default()
    };
    let mut total = 0.0;
    let mut n = 0usize;
    for trip in trips.iter().take(6) {
        if let Some(matched) = map_match(&g, &trip.trace, &mm) {
            total += weighted_jaccard(&g, &matched, &trip.path, EdgeWeight::Length);
            n += 1;
        }
    }
    assert!(n >= 4, "most traces must match");
    assert!(
        total / n as f64 > 0.85,
        "matched paths too dissimilar: {}",
        total / n as f64
    );
}

#[test]
fn node2vec_embeds_every_vertex_for_the_model() {
    let g = region();
    let cfg = Node2VecConfig {
        dim: 12,
        walks_per_vertex: 2,
        walk_length: 10,
        epochs: 1,
        ..Default::default()
    };
    let emb: Matrix = train_node2vec(&g, &cfg, 37);
    assert_eq!(emb.shape(), (g.vertex_count(), 12));
    assert!(emb.is_finite());
    // No vertex may have an all-zero embedding (every vertex is walked
    // from at least once in a strongly connected graph).
    for v in 0..g.vertex_count() {
        assert!(
            emb.row(v).iter().any(|&x| x != 0.0),
            "vertex {v} has a zero embedding"
        );
    }
}

#[test]
fn yen_paths_share_endpoints_with_query() {
    let g = region();
    let s = VertexId(3);
    let t = VertexId((g.vertex_count() - 5) as u32);
    for (p, cost) in yen_k_shortest(&g, s, t, CostModel::Length, 8) {
        assert_eq!(p.source(), s);
        assert_eq!(p.target(), t);
        assert!(p.is_simple());
        assert!(cost > 0.0);
        p.validate(&g).unwrap();
    }
}
