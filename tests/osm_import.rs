//! OSM ingestion: fixture exactness + malformed-input hardening.
//!
//! Two jobs. First, the checked-in fixture extract
//! (`fixtures/osm/pathrank_city.osm.xml`, regenerable with
//! `import_osm --gen-fixture`) must import into a graph on which every
//! existing exactness harness holds: ALT, CH and the bucket
//! many-to-many all **bit-identical** to plain Dijkstra, one-way edges
//! respected, and a `Workbench` built from the file serving exact
//! shortest/fastest paths through the Plain, ALT and CH backends.
//! Because the fixture bytes are fixed, exact float equality here is
//! deterministic — if it passes once it passes forever.
//!
//! Second, fuzz-style hardening: truncated, entity-laden,
//! attribute-reordered and structurally broken XML, and ways
//! referencing missing nodes, must be rejected or skipped with clear
//! errors — never a panic.

use std::sync::Arc;

use pathrank::spatial::algo::ch::{ChConfig, ContractionHierarchy};
use pathrank::spatial::algo::engine::{QueryEngine, SearchBackend};
use pathrank::spatial::algo::landmarks::{LandmarkConfig, LandmarkMetric, LandmarkTable};
use pathrank::spatial::graph::{CostModel, Graph, VertexId};
use pathrank::spatial::io::{imported_from_str, imported_to_string, load_graph_auto};
use pathrank::spatial::osm::synth::{synthetic_city, write_osm_xml, SynthCityConfig};
use pathrank::spatial::osm::{
    import_osm, parse_osm_str, ImportConfig, ImportedGraph, OsmData, OsmNode, OsmWay,
};
use proptest::prelude::*;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/fixtures/osm/pathrank_city.osm.xml"
);

fn fixture_imported() -> ImportedGraph {
    let xml = std::fs::read_to_string(FIXTURE).expect("fixture is checked in");
    let data = parse_osm_str(&xml).expect("fixture parses");
    import_osm(&data, &ImportConfig::default()).expect("fixture imports")
}

/// Every ordered vertex pair of the fixture graph (it is small enough
/// to sweep exhaustively).
fn all_pairs(g: &Graph) -> Vec<(VertexId, VertexId)> {
    let n = g.vertex_count() as u32;
    (0..n)
        .flat_map(|s| {
            (0..n)
                .filter(move |&t| s != t)
                .map(move |t| (VertexId(s), VertexId(t)))
        })
        .collect()
}

#[test]
fn osm_fixture_imports_with_expected_pipeline() {
    let ig = fixture_imported();
    let s = &ig.stats;
    // The fixture deliberately contains every hazard the importer
    // handles: unroutable ways, a clipped way, a disconnected fragment,
    // one-way streets and contractible chains.
    assert!(s.skipped_non_highway >= 1, "{s:?}");
    assert!(s.skipped_unroutable_class >= 2, "{s:?}");
    assert_eq!(s.skipped_missing_nodes, 1, "{s:?}");
    assert!(s.oneway_ways >= 5, "{s:?}");
    assert!(s.scc_vertices < s.segment_vertices, "SCC must prune");
    assert!(
        s.final_vertices < s.scc_vertices / 2,
        "chain contraction must fold the curve vertices: {s:?}"
    );
    assert!(s.total_km > 10.0, "{s:?}");
    assert!(s.highway_histogram.len() >= 5, "{:?}", s.highway_histogram);
    // Strongly connected and geometry-aligned.
    let g = &ig.graph;
    assert_eq!(g.largest_scc().len(), g.vertex_count());
    assert_eq!(ig.edge_geometry.len(), g.edge_count());
    assert!(
        ig.edge_geometry.iter().any(|geom| !geom.is_empty()),
        "contracted edges must retain interior geometry"
    );
    // Contracted lengths dominate the straight line between endpoints
    // (haversine sums can only stretch a chord), so Euclidean
    // heuristics stay admissible on imported networks.
    for (i, e) in g.edges().enumerate() {
        let span = g.euclidean(e.from, e.to);
        assert!(
            e.attrs.length_m >= span * 0.999,
            "edge {i}: length {} under span {span}",
            e.attrs.length_m
        );
    }
    // The persisted form round-trips bit-identically.
    let back = imported_from_str(&imported_to_string(&ig)).unwrap();
    assert_eq!(back.graph, ig.graph);
    assert_eq!(back.edge_geometry, ig.edge_geometry);
}

#[test]
fn osm_fixture_respects_oneway_edges() {
    let ig = fixture_imported();
    let g = &ig.graph;
    // One-way streets produce asymmetric adjacency: at least one
    // directed edge whose reverse does not exist (the motorway bypass,
    // the couplet, the roundabout).
    let asymmetric = g
        .edges()
        .filter(|e| g.find_edge(e.to, e.from).is_none())
        .count();
    assert!(asymmetric > 0, "fixture must keep one-way arcs one-way");
    // … and routing around them still works both directions (SCC).
    let mut engine = QueryEngine::new(g);
    for e in g
        .edges()
        .filter(|e| g.find_edge(e.to, e.from).is_none())
        .take(5)
    {
        let back = engine.shortest_path_cost(e.to, e.from, CostModel::Length);
        let fwd = engine.shortest_path_cost(e.from, e.to, CostModel::Length);
        assert!(
            back.is_some() && fwd.is_some(),
            "one-way endpoints routable"
        );
        assert!(
            back.unwrap() > fwd.unwrap(),
            "the detour around a one-way arc must cost more than the arc"
        );
    }
}

#[test]
fn osm_fixture_alt_and_ch_are_bit_identical_to_dijkstra() {
    let ig = fixture_imported();
    let g = &ig.graph;
    let pairs = all_pairs(g);
    for metric in [LandmarkMetric::Length, LandmarkMetric::TravelTime] {
        let cost = match metric {
            LandmarkMetric::Length => CostModel::Length,
            LandmarkMetric::TravelTime => CostModel::TravelTime,
        };
        let table = Arc::new(LandmarkTable::build(g, metric, &LandmarkConfig::default()));
        let ch = Arc::new(ContractionHierarchy::build(g, metric, &ChConfig::default()));
        let mut plain = QueryEngine::new(g);
        let mut alt = QueryEngine::new(g).with_landmarks(Arc::clone(&table));
        let mut chx = QueryEngine::new(g).with_ch(Arc::clone(&ch));
        assert!(alt.uses_alt(cost));
        assert!(chx.uses_ch(cost));
        for &(s, t) in &pairs {
            let a = plain.shortest_path_cost(s, t, cost);
            let b = alt.astar_shortest_path(s, t, cost).map(|p| p.cost(g, cost));
            let c = chx.shortest_path_cost(s, t, cost);
            assert_eq!(a, b, "ALT diverged on {s:?}->{t:?} ({metric:?})");
            assert_eq!(a, c, "CH diverged on {s:?}->{t:?} ({metric:?})");
        }
    }
}

#[test]
fn osm_fixture_m2m_tables_match_pairwise_dijkstra() {
    let ig = fixture_imported();
    let g = &ig.graph;
    let ch = Arc::new(ContractionHierarchy::build(
        g,
        LandmarkMetric::Length,
        &ChConfig::default(),
    ));
    let mut chx = QueryEngine::new(g).with_ch(Arc::clone(&ch));
    let mut plain = QueryEngine::new(g);
    let sources: Vec<VertexId> = (0..g.vertex_count() as u32)
        .step_by(3)
        .map(VertexId)
        .collect();
    let targets: Vec<VertexId> = (1..g.vertex_count() as u32)
        .step_by(4)
        .map(VertexId)
        .collect();
    let table = chx
        .many_to_many(&sources, &targets, CostModel::Length)
        .expect("length CH attached");
    for (i, &s) in sources.iter().enumerate() {
        for (j, &t) in targets.iter().enumerate() {
            let want = if s == t {
                0.0
            } else {
                plain
                    .shortest_path_cost(s, t, CostModel::Length)
                    .unwrap_or(f64::INFINITY)
            };
            // The bucket table accumulates shortcut weights in
            // contraction-tree order while Dijkstra folds along the
            // path, so on real-valued haversine weights the two sums
            // agree to the ulp, not the bit (the integer-weight m2m
            // harness locks the bit-level contract). A relative 1e-12
            // band is ~micrometres on a city network.
            let got = table.dist(i, j);
            assert!(
                (want - got).abs() <= 1e-12 * want.abs().max(1.0),
                "m2m diverged on {s:?}->{t:?}: {want} vs {got}"
            );
        }
    }
}

#[test]
fn osm_workbench_from_fixture_serves_exact_paths_on_all_backends() {
    use pathrank::core::pipeline::{ExperimentConfig, Workbench};
    let wb = Workbench::from_graph_file(FIXTURE, ExperimentConfig::small_test())
        .expect("fixture loads into a Workbench");
    assert!(wb.graph.vertex_count() > 20);
    // The fleet simulation and trajectory pipeline run unchanged on the
    // imported network.
    assert!(
        wb.train_paths.len() + wb.test_paths.len() > 0,
        "imported network must support simulated trajectories"
    );
    let mut plain = wb.query_engine();
    let mut alt = wb.alt_query_engine();
    let mut chx = wb.ch_query_engine();
    let mut fastest = wb.fastest_query_engine();
    assert!(alt.uses_alt(CostModel::Length));
    assert_eq!(chx.backend_for(CostModel::Length), SearchBackend::Ch);
    assert_eq!(
        fastest.backend_for(CostModel::TravelTime),
        SearchBackend::Ch
    );
    for (s, t) in all_pairs(&wb.graph) {
        let a = plain.shortest_path_cost(s, t, CostModel::Length);
        let b = alt.shortest_path_cost(s, t, CostModel::Length);
        let c = chx.shortest_path_cost(s, t, CostModel::Length);
        assert_eq!(a, b, "ALT diverged on {s:?}->{t:?}");
        assert_eq!(a, c, "CH diverged on {s:?}->{t:?}");
        let ft = plain.shortest_path_cost(s, t, CostModel::TravelTime);
        let fc = fastest.shortest_path_cost(s, t, CostModel::TravelTime);
        assert_eq!(ft, fc, "fastest-path CH diverged on {s:?}->{t:?}");
    }
}

#[test]
fn osm_load_graph_auto_serves_all_three_spellings_identically() {
    let dir = std::env::temp_dir().join(format!("pathrank-osm-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let from_xml = load_graph_auto(std::path::Path::new(FIXTURE)).unwrap();
    let imported = from_xml.into_imported().expect("XML path carries extras");
    let persisted = dir.join("fixture.graph");
    std::fs::write(&persisted, imported_to_string(&imported)).unwrap();
    let from_persisted = load_graph_auto(&persisted).unwrap();
    assert_eq!(imported.graph, from_persisted.graph);
    assert_eq!(
        Some(&imported.edge_geometry),
        from_persisted.geometry.as_ref(),
        "persisted geometry must round-trip through the auto-loader"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Malformed-input hardening (fuzz-style).
// ---------------------------------------------------------------------

/// Alphabet for adversarial tag values: XML metacharacters, quotes,
/// whitespace and multi-byte unicode.
const ADVERSARIAL: &[char] = &[
    'a', 'b', 'Z', '0', '9', ' ', '&', '<', '>', '"', '\'', ';', '#', '=', '/', 'ø', 'æ', '→',
];
/// Alphabet for tag keys (OSM keys are word-ish).
const KEY_ALPHABET: &[char] = &['a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '9', ':', '_'];

fn small_city_xml() -> String {
    write_osm_xml(&synthetic_city(
        &SynthCityConfig {
            cols: 3,
            rows: 3,
            curve_points: 1,
            ..SynthCityConfig::default()
        },
        7,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating a valid document at any byte either errors cleanly or
    /// (only past the closing tag) still parses — never a panic, and
    /// never a silent half-graph.
    #[test]
    fn osm_truncated_xml_is_rejected_never_panics(frac in 0.0f64..1.0) {
        let xml = small_city_xml();
        let body_end = xml.rfind("</osm>").unwrap();
        let cut = ((xml.len() as f64 * frac) as usize).min(xml.len());
        if !xml.is_char_boundary(cut) {
            return Ok(());
        }
        let result = parse_osm_str(&xml[..cut]);
        if cut < body_end + "</osm>".len() {
            prop_assert!(result.is_err(), "cut at {cut} must be rejected");
        } else {
            prop_assert!(result.is_ok());
        }
    }

    /// Attribute order never matters, and entity-laden values decode —
    /// the document is reassembled with shuffled attributes and
    /// adversarial tag values, then must parse to the same data.
    #[test]
    fn osm_attribute_reordering_and_entities_are_handled(
        order in 0usize..6,
        name_idx in proptest::collection::vec(0usize..ADVERSARIAL.len(), 0..24),
        id in 1i64..1_000_000,
        lat in -89.0f64..89.0,
        lon in -179.0f64..179.0,
    ) {
        // Entity-heavy alphabet: every XML metacharacter plus unicode.
        let name: String = name_idx.iter().map(|&i| ADVERSARIAL[i]).collect();
        let attrs = [
            format!("id=\"{id}\""),
            format!("lat=\"{lat}\""),
            format!("lon=\"{lon}\""),
        ];
        // One of the six permutations of the three attributes.
        let perm = [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]][order];
        let escaped: String = name
            .chars()
            .map(|c| match c {
                '&' => "&amp;".to_string(),
                '<' => "&lt;".to_string(),
                '>' => "&gt;".to_string(),
                '"' => "&quot;".to_string(),
                '\'' => "&apos;".to_string(),
                c => c.to_string(),
            })
            .collect();
        let doc = format!(
            "<osm><node {} {} {}/><way id=\"1\"><nd ref=\"{id}\"/><nd ref=\"{id}\"/>\
             <tag v=\"{escaped}\" k=\"name\"/></way></osm>",
            attrs[perm[0]], attrs[perm[1]], attrs[perm[2]],
        );
        let data = parse_osm_str(&doc).unwrap();
        prop_assert_eq!(data.nodes[0].id, id);
        prop_assert_eq!(data.nodes[0].lat, lat);
        prop_assert_eq!(data.nodes[0].lon, lon);
        prop_assert_eq!(data.ways[0].tag("name"), Some(name.as_str()));
    }

    /// Arbitrary well-formed data written by the synthetic writer
    /// round-trips through the parser exactly.
    #[test]
    fn osm_writer_parser_roundtrip_is_identity(
        n_nodes in 1usize..12,
        refs in proptest::collection::vec(0usize..16, 0..12),
        key_idx in proptest::collection::vec(0usize..KEY_ALPHABET.len(), 1..12),
        value_idx in proptest::collection::vec(0usize..ADVERSARIAL.len(), 0..20),
    ) {
        let key: String = key_idx.iter().map(|&i| KEY_ALPHABET[i]).collect();
        let value: String = value_idx.iter().map(|&i| ADVERSARIAL[i]).collect();
        let data = OsmData {
            nodes: (0..n_nodes)
                .map(|i| OsmNode {
                    id: i as i64 + 1,
                    lat: 50.0 + i as f64 * 0.001,
                    lon: 9.0 - i as f64 * 0.002,
                })
                .collect(),
            ways: vec![OsmWay {
                id: 77,
                refs: refs.iter().map(|&r| (r % n_nodes) as i64 + 1).collect(),
                tags: vec![(key, value)],
            }],
        };
        let back = parse_osm_str(&write_osm_xml(&data)).unwrap();
        prop_assert_eq!(back.ways, data.ways);
        prop_assert_eq!(back.nodes.len(), data.nodes.len());
    }

    /// Ways referencing nodes the extract does not contain are skipped
    /// (and counted) — the importer never panics, and its counters
    /// always reconcile with the raw way count.
    #[test]
    fn osm_import_skips_missing_refs_and_counters_reconcile(
        missing in proptest::collection::vec(100i64..200, 0..4),
        classes in proptest::collection::vec(0usize..6, 1..6),
    ) {
        let class_names = ["residential", "primary", "footway", "service", "", "motorway"];
        let mut data = OsmData::default();
        for i in 0..6i64 {
            data.nodes.push(OsmNode { id: i + 1, lat: 50.0 + i as f64 * 0.001, lon: 9.0 });
        }
        // A guaranteed-routable two-way ring so the import cannot end up
        // empty.
        data.ways.push(OsmWay {
            id: 1,
            refs: vec![1, 2, 3, 4, 5, 6, 1],
            tags: vec![("highway".into(), "residential".into())],
        });
        for (i, &c) in classes.iter().enumerate() {
            let mut refs = vec![1 + i as i64 % 6, 1 + (i as i64 + 1) % 6];
            if let Some(&m) = missing.get(i % missing.len().max(1)) {
                if i % 2 == 0 {
                    refs.push(m); // dangling ref → way must be skipped
                }
            }
            let mut tags = Vec::new();
            if !class_names[c].is_empty() {
                tags.push(("highway".to_string(), class_names[c].to_string()));
            }
            data.ways.push(OsmWay { id: 10 + i as i64, refs, tags });
        }
        let imported = import_osm(&data, &ImportConfig::default()).unwrap();
        let s = &imported.stats;
        prop_assert_eq!(
            s.kept_ways
                + s.skipped_non_highway
                + s.skipped_unroutable_class
                + s.skipped_missing_nodes
                + s.skipped_degenerate,
            s.raw_ways,
            "{:?}", s
        );
        prop_assert!(s.kept_ways >= 1);
        prop_assert_eq!(
            imported.graph.largest_scc().len(),
            imported.graph.vertex_count()
        );
    }
}
