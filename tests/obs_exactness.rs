//! Property-test harness locking in observability transparency.
//!
//! The obs layer's contract is that instrumentation *observes* queries
//! and never participates in them: a [`QueryEngine`] carrying live
//! [`EngineObs`] handles must return **bit-identical** answers — same
//! `Path`, same cost bits, same backend resolution — as the same engine
//! with the default no-op sink, across every backend (Plain / ALT / CH
//! / CCH) and across sparse live-weight updates re-customized through
//! `Cch::apply_delta`. The properties drive random graphs through all
//! four backends and chained speed deltas, comparing all-pairs answers
//! bitwise, and then assert the registry really was live (non-zero
//! query counts) so a silently-disabled registry can't fake a pass.

use std::sync::Arc;

use pathrank::obs::Registry;
use pathrank::spatial::algo::cch::{CchConfig, CchTopology};
use pathrank::spatial::algo::ch::{ChConfig, ContractionHierarchy};
use pathrank::spatial::algo::engine::{EngineObs, QueryEngine, SearchBackend};
use pathrank::spatial::algo::landmarks::{LandmarkConfig, LandmarkMetric, LandmarkTable};
use pathrank::spatial::builder::GraphBuilder;
use pathrank::spatial::geometry::Point;
use pathrank::spatial::graph::{CostModel, EdgeAttrs, EdgeId, Graph, RoadCategory, VertexId};
use proptest::prelude::*;

/// Builds a random directed graph from proptest-drawn raw material —
/// the same recipe as the other exactness harnesses, with mixed road
/// categories so free-flow speeds differ per edge.
fn build_graph(n: usize, coords: &[(f64, f64)], edges: &[(usize, usize, u32)]) -> Graph {
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..n)
        .map(|i| b.add_vertex(Point::new(coords[i].0, coords[i].1)))
        .collect();
    let mut seen = std::collections::HashSet::new();
    for &(f, t, w) in edges {
        let (f, t) = (f % n, t % n);
        let category = match w % 3 {
            0 => RoadCategory::Arterial,
            1 => RoadCategory::Rural,
            _ => RoadCategory::Residential,
        };
        if f != t && seen.insert((f, t)) {
            b.add_edge(
                vs[f],
                vs[t],
                EdgeAttrs::with_default_speed(w as f64, category),
            )
            .unwrap();
        }
    }
    b.build()
}

/// All-pairs bit-identity between a bare engine and its instrumented
/// twin: backend resolution, full `Path` extraction, and cost bits must
/// all agree under `cost`.
fn assert_obs_transparent(
    bare: &mut QueryEngine<'_>,
    instrumented: &mut QueryEngine<'_>,
    cost: CostModel<'_>,
    what: &str,
) {
    assert_eq!(
        bare.backend_for(cost),
        instrumented.backend_for(cost),
        "{what}: instrumentation changed backend resolution"
    );
    let n = bare.graph().vertex_count() as u32;
    for s in 0..n {
        for t in 0..n {
            let (s, t) = (VertexId(s), VertexId(t));
            let p0 = bare.shortest_path(s, t, cost);
            let p1 = instrumented.shortest_path(s, t, cost);
            assert_eq!(p0, p1, "{what}: {s:?}->{t:?} paths diverged");
            let c0 = bare.shortest_path_cost(s, t, cost);
            let c1 = instrumented.shortest_path_cost(s, t, cost);
            assert_eq!(
                c0.map(f64::to_bits),
                c1.map(f64::to_bits),
                "{what}: {s:?}->{t:?} cost bits diverged ({c0:?} vs {c1:?})"
            );
        }
    }
}

/// The indexes every backend sweep needs, built once per graph state.
struct Indexes {
    alt: Arc<LandmarkTable>,
    ch: Arc<ContractionHierarchy>,
    topo: Arc<CchTopology>,
}

impl Indexes {
    fn build(g: &Graph, metric: LandmarkMetric) -> Self {
        Indexes {
            alt: Arc::new(LandmarkTable::build(g, metric, &LandmarkConfig::default())),
            ch: Arc::new(ContractionHierarchy::build(g, metric, &ChConfig::default())),
            topo: Arc::new(CchTopology::build(g, &CchConfig::default())),
        }
    }
}

/// Sweeps all four backends over `g`, pairing each bare engine with an
/// instrumented twin registered on `registry`, and asserts bit-identity
/// plus the expected backend resolution.
fn sweep_backends<'g>(
    g: &'g Graph,
    ix: &Indexes,
    cch: &Arc<pathrank::spatial::algo::cch::Cch>,
    cost: CostModel<'_>,
    registry: &Registry,
    what: &str,
) {
    let obs = || EngineObs::new(registry);
    let cases: [(SearchBackend, Box<dyn Fn() -> QueryEngine<'g> + '_>); 4] = [
        (SearchBackend::Plain, Box::new(|| QueryEngine::new(g))),
        (
            SearchBackend::Alt,
            Box::new(|| QueryEngine::new(g).with_landmarks(Arc::clone(&ix.alt))),
        ),
        (
            SearchBackend::Cch,
            Box::new(|| QueryEngine::new(g).with_cch(Arc::clone(cch))),
        ),
        (
            SearchBackend::Ch,
            Box::new(|| QueryEngine::new(g).with_ch(Arc::clone(&ix.ch))),
        ),
    ];
    for (backend, make) in &cases {
        let mut bare = make();
        let mut instrumented = make().with_obs(obs());
        assert_eq!(
            instrumented.backend_for(cost),
            *backend,
            "{what}: fixture must exercise {backend:?}"
        );
        assert_obs_transparent(
            &mut bare,
            &mut instrumented,
            cost,
            &format!("{what}/{backend:?}"),
        );
    }
}

const MAX_N: usize = 8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline property: on random graphs, instrumented engines
    /// answer bit-identically to bare ones on all four backends, both
    /// before and after chained sparse live-weight updates applied
    /// through `Cch::apply_delta` — and the registry proves it counted
    /// every instrumented query.
    #[test]
    fn obs_instrumented_engines_stay_bit_identical(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..24),
        batches in proptest::collection::vec(
            proptest::collection::vec((0usize..64, 0.05f64..400.0), 1..6),
            1..3,
        ),
    ) {
        let mut g = build_graph(n, &coords, &edges);
        let m = g.edge_count();
        prop_assume!(m > 0);
        let registry = Registry::new();
        let cost = CostModel::TravelTime;
        let ix = Indexes::build(&g, LandmarkMetric::TravelTime);
        let mut partial = Arc::new(ix.topo.customize(&g, &cost));
        sweep_backends(&g, &ix, &partial, cost, &registry, "initial");
        for (i, batch) in batches.iter().enumerate() {
            let updates: Vec<(EdgeId, f64)> = batch
                .iter()
                .map(|&(e, s)| (EdgeId((e % m) as u32), s))
                .collect();
            let delta = g.set_edge_speeds(&updates);
            Arc::make_mut(&mut partial).apply_delta(&g, &delta);
            // ALT and CH predate the new weights epoch, so their bare
            // and instrumented engines must *both* fall back the same
            // way; the sparse-patched CCH serves directly. Each epoch
            // rebuilds ALT/CH fresh as well to keep all four backends
            // live.
            let ix = Indexes::build(&g, LandmarkMetric::TravelTime);
            sweep_backends(&g, &ix, &partial, cost, &registry, &format!("epoch {i}"));
        }
        let counted = registry
            .snapshot()
            .counter_total("pathrank_engine_queries_total", &[]);
        // Half of every sweep's queries ran on the instrumented twin:
        // 4 backends x n(n-1) off-diagonal pairs x 2 calls (path +
        // cost), per epoch — s == t short-circuits before dispatch and
        // is deliberately not a counted query.
        let epochs = 1 + batches.len() as u64;
        assert_eq!(
            counted,
            epochs * 4 * (n as u64 * (n as u64 - 1)) * 2,
            "registry must have counted every instrumented query"
        );
    }
}

/// Stale indexes must fall back identically with and without
/// instrumentation — the fallback counters observe the decision, never
/// steer it.
#[test]
fn obs_fallback_decisions_are_identical_and_counted() {
    let coords: Vec<(f64, f64)> = (0..6)
        .map(|i| (((i * 211) % 800) as f64, ((i * 137) % 500) as f64))
        .collect();
    let edges: Vec<(usize, usize, u32)> = vec![
        (0, 1, 9),
        (1, 2, 14),
        (2, 3, 4),
        (3, 4, 21),
        (4, 5, 8),
        (5, 0, 16),
        (0, 3, 30),
        (2, 5, 11),
        (4, 1, 7),
    ];
    let mut g = build_graph(6, &coords, &edges);
    let cost = CostModel::TravelTime;
    let ix = Indexes::build(&g, LandmarkMetric::TravelTime);
    let cch = Arc::new(ix.topo.customize(&g, &cost));
    // Move one speed *after* building every index: CH/CCH/ALT all go
    // stale, and both engines must degrade to the same plain search.
    g.set_edge_speeds(&[(EdgeId(2), 33.0)]);
    let registry = Registry::new();
    let mut bare = QueryEngine::new(&g)
        .with_landmarks(Arc::clone(&ix.alt))
        .with_ch(Arc::clone(&ix.ch))
        .with_cch(Arc::clone(&cch));
    let mut instrumented = QueryEngine::new(&g)
        .with_landmarks(Arc::clone(&ix.alt))
        .with_ch(Arc::clone(&ix.ch))
        .with_cch(Arc::clone(&cch))
        .with_obs(EngineObs::new(&registry));
    assert_eq!(instrumented.backend_for(cost), SearchBackend::Plain);
    assert_obs_transparent(&mut bare, &mut instrumented, cost, "stale-index fallback");
    let snap = registry.snapshot();
    let stale = snap.counter_total(
        "pathrank_engine_fallback_total",
        &[("reason", "stale_weights")],
    );
    assert!(
        stale > 0,
        "stale-weights fallbacks must be visible in the registry"
    );
    assert_eq!(
        snap.counter_total(
            "pathrank_engine_fallback_total",
            &[("reason", "metric_mismatch")]
        ),
        0
    );
}
