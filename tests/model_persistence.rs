//! Integration: a trained PathRank model survives serialisation — the
//! restored parameter store drives bit-identical predictions.

use pathrank::core::candidates::{CandidateConfig, Strategy};
use pathrank::core::model::ModelConfig;
use pathrank::core::pipeline::{ExperimentConfig, Workbench};
use pathrank::core::trainer::TrainConfig;
use pathrank::nn::serialize::{params_from_str, params_to_string};
use pathrank::nn::Tape;

#[test]
fn trained_model_roundtrips_through_text_format() {
    let mut wb = Workbench::new(ExperimentConfig::small_test());
    let ccfg = CandidateConfig {
        k: 4,
        ..CandidateConfig::paper_default(Strategy::DTkDI)
    };
    let tcfg = TrainConfig {
        epochs: 2,
        threads: 1,
        ..TrainConfig::default()
    };
    let (_, model) = wb.run_with_model(ModelConfig::paper_default(16), ccfg, tcfg);

    // Serialise and restore the parameter store.
    let text = params_to_string(&model.store);
    let restored = params_from_str(&text).expect("round trip");
    assert_eq!(restored.len(), model.store.len());
    assert_eq!(restored.scalar_count(), model.store.scalar_count());
    for ((_, n1, v1), (_, n2, v2)) in model.store.iter().zip(restored.iter()) {
        assert_eq!(n1, n2, "parameter order must be preserved");
        assert_eq!(v1, v2, "parameter {n1} must restore bit-identically");
    }

    // The restored store can be evaluated directly: re-run the embedding
    // lookup + a matmul against both stores and compare.
    let probe: Vec<u32> = wb.test_paths[0].vertices().iter().map(|v| v.0).collect();
    let from_model = model.score_path(&probe);
    // Rebuild the same forward pass against the restored store by reusing
    // the model struct's parameters via the store contents (scores must be
    // reproducible through the persisted values).
    let mut tape = Tape::new(&restored);
    let first_param = pathrank::nn::ParamId(0);
    let x = tape.embed(first_param, &probe);
    assert_eq!(tape.value(x).rows(), probe.len());
    // Full-model equality: serialise the restored store again; the text
    // fixed point proves the persisted state is stable.
    assert_eq!(
        text,
        params_to_string(&restored),
        "serialisation is a fixed point"
    );
    assert!((0.0..=1.0).contains(&from_model));
}
