//! End-to-end integration: the full PathRank pipeline on a small region,
//! exercising every crate through the public facade.

use pathrank::core::candidates::{CandidateConfig, Strategy};
use pathrank::core::eval::{baselines, evaluate_with};
use pathrank::core::model::{EmbeddingMode, ModelConfig};
use pathrank::core::pipeline::{ExperimentConfig, Workbench};
use pathrank::core::trainer::TrainConfig;

fn medium_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small_test();
    cfg.sim.n_vehicles = 10;
    cfg.sim.trips_per_vehicle = 6;
    cfg
}

fn train_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        lr: 2e-3,
        threads: 2,
        ..TrainConfig::default()
    }
}

#[test]
fn full_pipeline_learns_something() {
    let mut wb = Workbench::new(medium_config());
    let ccfg = CandidateConfig {
        k: 6,
        ..CandidateConfig::paper_default(Strategy::DTkDI)
    };
    let result = wb.run(ModelConfig::paper_default(32), ccfg, train_cfg(8));

    // Training loss decreased.
    let losses = &result.report.epoch_losses;
    assert!(losses.last().unwrap() < losses.first().unwrap());
    // Test metrics are in range and the ranking carries positive signal.
    assert!(result.eval.mae < 0.5, "MAE {}", result.eval.mae);
    assert!(result.eval.tau > 0.0, "tau {}", result.eval.tau);
    assert!(result.eval.rho > 0.0, "rho {}", result.eval.rho);
}

#[test]
fn both_strategies_and_variants_run() {
    let mut wb = Workbench::new(ExperimentConfig::small_test());
    for strategy in [Strategy::TkDI, Strategy::DTkDI] {
        for mode in [EmbeddingMode::FrozenPretrained, EmbeddingMode::Trainable] {
            let ccfg = CandidateConfig {
                k: 4,
                ..CandidateConfig::paper_default(strategy)
            };
            let mcfg = ModelConfig {
                embedding_mode: mode,
                ..ModelConfig::paper_default(16)
            };
            let result = wb.run(mcfg, ccfg, train_cfg(2));
            assert!(result.eval.mae.is_finite());
            assert!(result.test_groups > 0);
        }
    }
}

#[test]
fn trained_model_outranks_random_scores() {
    let mut wb = Workbench::new(medium_config());
    let ccfg = CandidateConfig {
        k: 6,
        ..CandidateConfig::paper_default(Strategy::DTkDI)
    };
    let result = wb.run(ModelConfig::paper_default(32), ccfg, train_cfg(8));

    // A deterministic pseudo-random scorer as the floor.
    let test_groups = wb.test_groups(6);
    let random = evaluate_with(&test_groups, |g| {
        (0..g.len())
            .map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0)
            .collect()
    });
    assert!(
        result.eval.tau > random.tau,
        "trained tau {} must beat arbitrary scorer tau {}",
        result.eval.tau,
        random.tau
    );
}

#[test]
fn baselines_are_outperformed_or_matched_on_mae() {
    // Baselines use raw cost ratios which are not calibrated to the
    // weighted-Jaccard scale, so the learned model should at least match
    // them on MAE.
    let mut wb = Workbench::new(medium_config());
    let ccfg = CandidateConfig {
        k: 6,
        ..CandidateConfig::paper_default(Strategy::DTkDI)
    };
    let result = wb.run(ModelConfig::paper_default(32), ccfg, train_cfg(8));

    let g = wb.graph.clone();
    let test_groups = wb.test_groups(6);
    let sp = evaluate_with(&test_groups, |grp| {
        baselines::shortest_length_ratio(&g, grp)
    });
    assert!(
        result.eval.mae <= sp.mae * 1.2,
        "PathRank MAE {} should be competitive with SP baseline {}",
        result.eval.mae,
        sp.mae
    );
}

#[test]
fn map_matching_pipeline_variant_runs() {
    let mut cfg = ExperimentConfig::small_test();
    cfg.use_map_matching = true;
    cfg.sim.n_vehicles = 4;
    cfg.sim.trips_per_vehicle = 4;
    let wb = Workbench::new(cfg);
    assert!(
        wb.train_paths.len() + wb.test_paths.len() > 0,
        "map-matched dataset must not be empty"
    );
}
