//! Property-test harness locking in many-to-many exactness.
//!
//! A bucket-based [`DistanceTable`] is only an optimisation if it can
//! never change an answer. These properties drive CH-backed batched
//! queries against pairwise plain Dijkstra on random generator graphs
//! and require **bit-identical distances** — not approximate equality.
//! Edge weights are small integers (and travel times exact doubles of
//! them, via a 1.8 km/h speed), so every equal-cost path sums to exactly
//! the same `f64` under any association order and float tie-break noise
//! cannot mask a real divergence — including the raw shortcut-weight
//! sums the bucket algorithm returns.
//!
//! Covered regimes, per the issue:
//! * `DistanceTable` entries vs pairwise Dijkstra over full vertex
//!   cross-products, including unreachable pairs (`INFINITY`) and
//!   diagonal self-pairs (`0.0`);
//! * interleaved `Length`/`TravelTime` metrics on one shared scratch —
//!   alternating tables between two hierarchies must never leak bucket
//!   or label state;
//! * the batched one-to-many entry point vs the one-to-all tree;
//! * `CostModel::Custom` and metric-mismatched batched calls must
//!   return `None` (the caller's sp-cache fallback path), asserted at
//!   the engine layer;
//! * map matching with the bulk fill on vs off must produce identical
//!   matched edge sequences, and a metric-mismatched hierarchy must
//!   leave the fill inert while matches still equal the plain matcher's.

use std::sync::Arc;

use pathrank::spatial::algo::cch::{CchConfig, CchTopology};
use pathrank::spatial::algo::ch::{ChConfig, ContractionHierarchy};
use pathrank::spatial::algo::dijkstra::shortest_path;
use pathrank::spatial::algo::landmarks::LandmarkMetric;
use pathrank::spatial::algo::m2m::M2mSearch;
use pathrank::spatial::algo::QueryEngine;
use pathrank::spatial::builder::GraphBuilder;
use pathrank::spatial::geometry::Point;
use pathrank::spatial::graph::{CostModel, EdgeAttrs, EdgeId, Graph, RoadCategory, VertexId};
use proptest::prelude::*;

/// Builds a random directed graph from proptest-drawn raw material:
/// `n` vertices with the given coordinates and deduplicated directed
/// edges with integer-metre lengths. The fixed 1.8 km/h speed makes
/// every travel time exactly `2 × length` — integer-valued, so both
/// metrics sum exactly in `f64`.
fn build_graph(n: usize, coords: &[(f64, f64)], edges: &[(usize, usize, u32)]) -> Graph {
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..n)
        .map(|i| b.add_vertex(Point::new(coords[i].0, coords[i].1)))
        .collect();
    let mut seen = std::collections::HashSet::new();
    for &(f, t, w) in edges {
        let (f, t) = (f % n, t % n);
        if f != t && seen.insert((f, t)) {
            b.add_edge(
                vs[f],
                vs[t],
                EdgeAttrs {
                    length_m: w as f64,
                    speed_kmh: 1.8,
                    category: RoadCategory::Rural,
                },
            )
            .unwrap();
        }
    }
    b.build()
}

/// Pairwise reference distance under `cost`: plain Dijkstra, `0.0` on
/// the diagonal, `INFINITY` when unreachable — exactly the table's
/// contract.
fn reference(g: &Graph, s: VertexId, t: VertexId, cost: CostModel<'_>) -> f64 {
    if s == t {
        return 0.0;
    }
    shortest_path(g, s, t, cost)
        .map(|p| p.cost(g, cost))
        .unwrap_or(f64::INFINITY)
}

const MAX_N: usize = 10;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn m2m_tables_bit_identical_to_pairwise_dijkstra(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..30),
    ) {
        // The full vertex cross-product: unreachable pairs and diagonal
        // self-pairs included, on sparse graphs that are frequently
        // disconnected.
        let g = build_graph(n, &coords, &edges);
        let ch = Arc::new(ContractionHierarchy::build(
            &g,
            LandmarkMetric::Length,
            &ChConfig { threads: 2, witness_settle_cap: 8 },
        ));
        let mut engine = QueryEngine::new(&g).with_ch(ch);
        let all: Vec<VertexId> = (0..n as u32).map(VertexId).collect();
        let table = engine
            .many_to_many(&all, &all, CostModel::Length)
            .expect("length CH attached");
        prop_assert_eq!(table.shape(), (n, n));
        for (i, &s) in all.iter().enumerate() {
            for (j, &t) in all.iter().enumerate() {
                let expect = reference(&g, s, t, CostModel::Length);
                prop_assert_eq!(
                    expect.to_bits(),
                    table.dist(i, j).to_bits(),
                    "table diverged on {:?}->{:?}: {} vs {}",
                    s, t, expect, table.dist(i, j)
                );
            }
        }
    }

    #[test]
    fn m2m_interleaved_metrics_share_one_scratch_without_leaking(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..30),
        rounds in 1usize..4,
    ) {
        // Alternate Length- and TravelTime-metric tables on ONE scratch:
        // every entry of every round must stay bit-identical to pairwise
        // Dijkstra under the round's metric.
        let g = build_graph(n, &coords, &edges);
        let cfg = ChConfig { threads: 2, witness_settle_cap: 8 };
        let ch_len = ContractionHierarchy::build(&g, LandmarkMetric::Length, &cfg);
        let ch_tt = ContractionHierarchy::build(&g, LandmarkMetric::TravelTime, &cfg);
        let mut search = M2mSearch::new(g.vertex_count());
        let all: Vec<VertexId> = (0..n as u32).map(VertexId).collect();
        for _ in 0..rounds {
            for (ch, cost) in [
                (&ch_len, CostModel::Length),
                (&ch_tt, CostModel::TravelTime),
            ] {
                let table = ch.many_to_many(&mut search, &all, &all);
                for (i, &s) in all.iter().enumerate() {
                    for (j, &t) in all.iter().enumerate() {
                        let expect = reference(&g, s, t, cost);
                        prop_assert_eq!(
                            expect.to_bits(),
                            table.dist(i, j).to_bits(),
                            "interleaved {:?} diverged on {:?}->{:?}",
                            cost, s, t
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn m2m_one_to_many_matches_one_to_all_tree(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..30),
    ) {
        let g = build_graph(n, &coords, &edges);
        let ch = Arc::new(ContractionHierarchy::build(
            &g,
            LandmarkMetric::Length,
            &ChConfig { threads: 2, witness_settle_cap: 8 },
        ));
        let mut engine = QueryEngine::new(&g).with_ch(ch);
        let all: Vec<VertexId> = (0..n as u32).map(VertexId).collect();
        for &s in &all {
            let batched = engine
                .one_to_many(s, &all, CostModel::Length)
                .expect("length CH attached");
            // Self-distance is 0 on the diagonal entry.
            for (j, &t) in all.iter().enumerate() {
                let expect = reference(&g, s, t, CostModel::Length);
                prop_assert_eq!(
                    expect.to_bits(),
                    batched[j].to_bits(),
                    "one_to_many diverged on {:?}->{:?}", s, t
                );
            }
            // And against the engine's own one-to-all tree.
            let view = engine.one_to_all(s, CostModel::Length);
            let full: Vec<f64> = all.iter().map(|&t| view.dist(t)).collect();
            for (j, &t) in all.iter().enumerate() {
                if t != s {
                    prop_assert_eq!(
                        full[j].to_bits(),
                        engine
                            .one_to_many(s, &all, CostModel::Length)
                            .expect("length CH attached")[j]
                            .to_bits(),
                        "one_to_many vs one_to_all diverged at {:?}", t
                    );
                }
            }
        }
    }

    #[test]
    fn m2m_custom_and_mismatched_metrics_return_none(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..30),
        salt in 1u32..40,
    ) {
        // The metric gate of the batched entry points: a Custom cost
        // slice or a mismatched metric must force the caller onto its
        // fallback (map matching's sp-cache probes), never a stale table.
        let g = build_graph(n, &coords, &edges);
        let custom: Vec<f64> = (0..g.edge_count())
            .map(|i| 1.0 + ((i as u32 * salt) % 17) as f64)
            .collect();
        let all: Vec<VertexId> = (0..n as u32).map(VertexId).collect();
        let mut plain = QueryEngine::new(&g);
        prop_assert!(plain.many_to_many(&all, &all, CostModel::Length).is_none());
        let ch = Arc::new(ContractionHierarchy::build(
            &g,
            LandmarkMetric::Length,
            &ChConfig { threads: 2, witness_settle_cap: 8 },
        ));
        let mut engine = QueryEngine::new(&g).with_ch(ch);
        prop_assert!(engine.many_to_many(&all, &all, CostModel::Length).is_some());
        prop_assert!(engine.many_to_many(&all, &all, CostModel::TravelTime).is_none());
        prop_assert!(engine
            .many_to_many(&all, &all, CostModel::Custom(&custom))
            .is_none());
        prop_assert!(engine.one_to_many(all[0], &all, CostModel::TravelTime).is_none());
        prop_assert!(engine
            .one_to_many(all[0], &all, CostModel::Custom(&custom))
            .is_none());
    }

    /// Batched tables off a customizable CH stay bit-identical to
    /// pairwise Dijkstra through rounds of live weight perturbation.
    /// Speeds from {0.9, 1.8, 3.6} km/h keep travel times integer
    /// ({4, 2, 1} × length), so even the raw shortcut-weight sums the
    /// bucket algorithm returns are exact.
    #[test]
    fn cch_m2m_tables_bit_identical_across_perturbation_rounds(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..30),
        salts in proptest::collection::vec(0u64..1000, 2..4),
    ) {
        let mut g = build_graph(n, &coords, &edges);
        if g.edge_count() == 0 {
            return Ok(());
        }
        let topo = Arc::new(CchTopology::build(&g, &CchConfig { threads: 2 }));
        let all: Vec<VertexId> = (0..n as u32).map(VertexId).collect();
        for (round, &salt) in salts.iter().enumerate() {
            let speeds: Vec<(EdgeId, f64)> = (0..g.edge_count())
                .map(|i| {
                    let pick = (i as u64).wrapping_mul(31).wrapping_add(salt) % 3;
                    (EdgeId(i as u32), [0.9, 1.8, 3.6][pick as usize])
                })
                .collect();
            g.set_edge_speeds(&speeds);
            let cch = Arc::new(topo.customize(&g, &CostModel::TravelTime));
            let mut engine = QueryEngine::new(&g).with_cch(cch);
            // The customization is TravelTime-only: Length batched calls
            // must hit the caller's fallback, not a wrong-metric table.
            prop_assert!(engine.many_to_many(&all, &all, CostModel::Length).is_none());
            let table = engine
                .many_to_many(&all, &all, CostModel::TravelTime)
                .expect("TravelTime CCH attached");
            for (i, &s) in all.iter().enumerate() {
                for (j, &t) in all.iter().enumerate() {
                    let expect = reference(&g, s, t, CostModel::TravelTime);
                    prop_assert_eq!(
                        expect.to_bits(),
                        table.dist(i, j).to_bits(),
                        "round {} CCH table diverged on {:?}->{:?}: {} vs {}",
                        round, s, t, expect, table.dist(i, j)
                    );
                }
            }
            for &s in &all {
                let batched = engine
                    .one_to_many(s, &all, CostModel::TravelTime)
                    .expect("TravelTime CCH attached");
                for (j, &t) in all.iter().enumerate() {
                    prop_assert_eq!(
                        reference(&g, s, t, CostModel::TravelTime).to_bits(),
                        batched[j].to_bits(),
                        "round {} CCH one_to_many diverged on {:?}->{:?}", round, s, t
                    );
                }
            }
        }
    }

    /// One engine serving Length off a classic CH and TravelTime off a
    /// CCH, alternating tables on its single shared m2m scratch — no
    /// bucket or label state may leak between the two hierarchies.
    #[test]
    fn cch_interleaved_metrics_share_engine_scratch(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..30), 1..30),
        rounds in 1usize..4,
    ) {
        let g = build_graph(n, &coords, &edges);
        if g.edge_count() == 0 {
            return Ok(());
        }
        let ch_len = Arc::new(ContractionHierarchy::build(
            &g,
            LandmarkMetric::Length,
            &ChConfig { threads: 2, witness_settle_cap: 8 },
        ));
        let topo = Arc::new(CchTopology::build(&g, &CchConfig { threads: 2 }));
        let cch_tt = Arc::new(topo.customize(&g, &CostModel::TravelTime));
        let mut engine = QueryEngine::new(&g).with_ch(ch_len).with_cch(cch_tt);
        let all: Vec<VertexId> = (0..n as u32).map(VertexId).collect();
        for _ in 0..rounds {
            for cost in [CostModel::Length, CostModel::TravelTime] {
                let table = engine
                    .many_to_many(&all, &all, cost)
                    .expect("each metric has a serving hierarchy");
                for (i, &s) in all.iter().enumerate() {
                    for (j, &t) in all.iter().enumerate() {
                        let expect = reference(&g, s, t, cost);
                        prop_assert_eq!(
                            expect.to_bits(),
                            table.dist(i, j).to_bits(),
                            "interleaved {:?} diverged on {:?}->{:?}",
                            cost, s, t
                        );
                    }
                }
            }
        }
    }
}

/// Deterministic companion: on a simulated fleet, the bulk fill must not
/// change a single matched edge sequence — m2m on vs off, and a
/// metric-mismatched hierarchy vs the plain matcher.
#[test]
fn m2m_map_match_results_unchanged_on_vs_off() {
    use pathrank::spatial::generators::{region_network, RegionConfig};
    use pathrank::traj::mapmatch::{MapMatchConfig, MapMatcher};
    use pathrank::traj::simulator::{simulate_fleet, SimulationConfig};

    let g = region_network(&RegionConfig::small_test(), 4);
    let trips = simulate_fleet(&g, &SimulationConfig::small_test(), 17);
    let ch = Arc::new(ContractionHierarchy::build(
        &g,
        LandmarkMetric::Length,
        &ChConfig::default(),
    ));
    let tt_ch = Arc::new(ContractionHierarchy::build(
        &g,
        LandmarkMetric::TravelTime,
        &ChConfig::default(),
    ));
    let cfg = MapMatchConfig::default();
    let mut plain = MapMatcher::new(&g, cfg.clone());
    let mut on = MapMatcher::new(&g, cfg.clone()).with_ch(Arc::clone(&ch));
    let mut off = MapMatcher::new(&g, cfg.clone()).with_ch(ch).with_m2m(false);
    let mut mismatched = MapMatcher::new(&g, cfg).with_ch(tt_ch);
    for trip in trips.iter().take(10) {
        let reference = plain.match_trace(&trip.trace).map(|p| p.edges().to_vec());
        for matcher in [&mut on, &mut off, &mut mismatched] {
            let got = matcher.match_trace(&trip.trace).map(|p| p.edges().to_vec());
            assert_eq!(reference, got, "matcher configuration changed a match");
        }
    }
    assert!(
        on.stats().m2m_tables > 0,
        "the m2m matcher must actually bulk-fill"
    );
    assert!(on.stats().probes_avoided_by_m2m() > 0);
    assert_eq!(
        off.stats().m2m_tables,
        0,
        "with m2m off no tables may be built"
    );
    assert_eq!(
        mismatched.stats().m2m_tables,
        0,
        "a TravelTime CH cannot serve Length transition probes"
    );
    assert!(
        mismatched.stats().sp_probes > 0,
        "the mismatched matcher must fall back to the sp-cache path"
    );
}
