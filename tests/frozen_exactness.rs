//! Property-test harness locking in frozen-serving-graph exactness.
//!
//! The [`FrozenGraph`] is a memory-layout optimisation, never an
//! approximation: it changes *how* a search walks the graph (one merged
//! CSR with per-metric weights inlined next to each arc), never which
//! answer comes back. These properties drive frozen-mounted engines
//! against plain builder-graph engines on random generator graphs and
//! require **bit-identical costs** — the frozen arc order is copied
//! verbatim from the builder CSR, so heap evolution, settle order and
//! parent choices must match exactly, not just up to ties.
//!
//! Covered regimes, per the issue:
//! * one-to-one `shortest_path` / `astar_shortest_path` and the cost
//!   probe across Length, TravelTime and `Custom` slices;
//! * full one-to-all trees, every settled distance bitwise;
//! * the weights-epoch gate: a live weight mutation must un-mount the
//!   frozen view (stale inlined weights are never served) and the
//!   fallback must answer exactly off the mutated builder graph;
//! * the persisted binary section: a round-tripped frozen graph serves
//!   bit-identical answers, the writer is byte-stable, and corrupt
//!   input is rejected rather than mis-served.

use std::sync::Arc;

use pathrank::spatial::algo::dijkstra::shortest_path;
use pathrank::spatial::algo::engine::QueryEngine;
use pathrank::spatial::builder::GraphBuilder;
use pathrank::spatial::frozen::FrozenGraph;
use pathrank::spatial::geometry::Point;
use pathrank::spatial::graph::{CostModel, EdgeAttrs, EdgeId, Graph, RoadCategory, VertexId};
use proptest::prelude::*;

/// Builds a random directed graph from proptest-drawn raw material:
/// `n` vertices with the given coordinates and deduplicated directed
/// edges with integer-metre lengths.
fn build_graph(n: usize, coords: &[(f64, f64)], edges: &[(usize, usize, u32)]) -> Graph {
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..n)
        .map(|i| b.add_vertex(Point::new(coords[i].0, coords[i].1)))
        .collect();
    let mut seen = std::collections::HashSet::new();
    for &(f, t, w) in edges {
        let (f, t) = (f % n, t % n);
        if f != t && seen.insert((f, t)) {
            b.add_edge(
                vs[f],
                vs[t],
                EdgeAttrs::with_default_speed(w as f64, RoadCategory::Rural),
            )
            .unwrap();
        }
    }
    b.build()
}

/// Exact cost of an optional path under a cost model (`None` ⇒ NaN-free
/// sentinel), so reachability and cost compare in one assert.
fn cost_of(g: &Graph, p: &Option<pathrank::spatial::path::Path>, cost: CostModel<'_>) -> f64 {
    p.as_ref().map_or(-1.0, |p| p.cost(g, cost))
}

const MAX_N: usize = 10;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn frozen_one_to_one_bit_identical_across_metrics(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..30),
        salt in 1u32..40,
    ) {
        let g = build_graph(n, &coords, &edges);
        let frozen = Arc::new(FrozenGraph::freeze(&g));
        let mut plain_engine = QueryEngine::new(&g);
        let mut frz = QueryEngine::new(&g).with_frozen(Arc::clone(&frozen));
        prop_assert!(frz.uses_frozen());
        prop_assert!(!plain_engine.uses_frozen());
        let custom: Vec<f64> = (0..g.edge_count())
            .map(|i| 1.0 + ((i as u32 * salt) % 17) as f64)
            .collect();
        for s in 0..n {
            for t in 0..n {
                let (s, t) = (VertexId(s as u32), VertexId(t as u32));
                if s == t {
                    continue;
                }
                for cost in [CostModel::Length, CostModel::TravelTime, CostModel::Custom(&custom)] {
                    let a = plain_engine.shortest_path(s, t, cost);
                    let b = frz.shortest_path(s, t, cost);
                    // Identical paths edge-for-edge, not merely equal
                    // costs: the frozen relaxation order is the builder
                    // CSR's, so even tie-breaking must agree.
                    prop_assert_eq!(
                        a.as_ref().map(|p| p.edges().to_vec()),
                        b.as_ref().map(|p| p.edges().to_vec()),
                        "frozen path diverged on {:?}->{:?}", s, t
                    );
                    prop_assert_eq!(
                        cost_of(&g, &a, cost).to_bits(),
                        cost_of(&g, &b, cost).to_bits(),
                        "frozen cost not bit-identical on {:?}->{:?}", s, t
                    );
                    let c = frz.astar_shortest_path(s, t, cost);
                    prop_assert_eq!(
                        cost_of(&g, &a, cost).to_bits(),
                        cost_of(&g, &c, cost).to_bits(),
                        "frozen A* not bit-identical on {:?}->{:?}", s, t
                    );
                    // The cost probe (map matching's transition model).
                    prop_assert_eq!(
                        a.as_ref().map(|p| p.cost(&g, cost).to_bits()),
                        frz.shortest_path_cost(s, t, cost).map(f64::to_bits),
                        "frozen cost probe diverged on {:?}->{:?}", s, t
                    );
                }
            }
        }
    }

    #[test]
    fn frozen_one_to_all_trees_bit_identical(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..30),
    ) {
        let g = build_graph(n, &coords, &edges);
        let frozen = Arc::new(FrozenGraph::freeze(&g));
        let mut plain_engine = QueryEngine::new(&g);
        let mut frz = QueryEngine::new(&g).with_frozen(frozen);
        for s in 0..n {
            let s = VertexId(s as u32);
            for cost in [CostModel::Length, CostModel::TravelTime] {
                let a: Vec<u64> = {
                    let view = plain_engine.one_to_all(s, cost);
                    (0..n as u32).map(|v| view.dist(VertexId(v)).to_bits()).collect()
                };
                let b: Vec<u64> = {
                    let view = frz.one_to_all(s, cost);
                    (0..n as u32).map(|v| view.dist(VertexId(v)).to_bits()).collect()
                };
                prop_assert_eq!(a, b, "frozen tree diverged from {:?}", s);
            }
        }
    }

    /// Live weight mutation: the frozen view's inlined weights go stale,
    /// so the engine must stop serving it (epoch gate) and the fallback
    /// must answer exactly off the mutated builder graph. Re-freezing at
    /// the new epoch restores the frozen path, again bit-identical.
    #[test]
    fn frozen_epoch_gate_unmounts_on_weight_mutation(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..30),
        slow_pick in 0usize..64,
    ) {
        let mut g = build_graph(n, &coords, &edges);
        if g.edge_count() == 0 {
            return Ok(());
        }
        let stale = Arc::new(FrozenGraph::freeze(&g));
        g.set_edge_speed(EdgeId((slow_pick % g.edge_count()) as u32), 5.0);
        prop_assert!(!stale.current_for(&g));
        let mut engine = QueryEngine::new(&g).with_frozen(Arc::clone(&stale));
        prop_assert!(!engine.uses_frozen(), "stale frozen view must never be served");
        for s in 0..n {
            for t in 0..n {
                let (s, t) = (VertexId(s as u32), VertexId(t as u32));
                if s == t {
                    continue;
                }
                let a = shortest_path(&g, s, t, CostModel::TravelTime);
                let b = engine.shortest_path(s, t, CostModel::TravelTime);
                prop_assert_eq!(
                    cost_of(&g, &a, CostModel::TravelTime).to_bits(),
                    cost_of(&g, &b, CostModel::TravelTime).to_bits(),
                    "fallback diverged on {:?}->{:?}", s, t
                );
            }
        }
        // Re-freeze at the mutated epoch: the fast path comes back.
        engine.set_frozen(Some(Arc::new(FrozenGraph::freeze(&g))));
        prop_assert!(engine.uses_frozen());
        for s in 0..n.min(4) {
            for t in 0..n {
                let (s, t) = (VertexId(s as u32), VertexId(t as u32));
                if s == t {
                    continue;
                }
                let a = shortest_path(&g, s, t, CostModel::TravelTime);
                let b = engine.shortest_path(s, t, CostModel::TravelTime);
                prop_assert_eq!(
                    cost_of(&g, &a, CostModel::TravelTime).to_bits(),
                    cost_of(&g, &b, CostModel::TravelTime).to_bits(),
                    "re-frozen engine diverged on {:?}->{:?}", s, t
                );
            }
        }
    }

    /// The persisted binary section: a frozen graph that has been
    /// through `frozen_to_bytes` / `frozen_from_bytes` serves answers
    /// bit-identical to the original, and the writer is byte-stable.
    #[test]
    fn frozen_io_roundtrip_serves_bit_identical(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..30),
    ) {
        use pathrank::spatial::io::{frozen_from_bytes, frozen_to_bytes};
        let g = build_graph(n, &coords, &edges);
        let frozen = FrozenGraph::freeze(&g);
        let bytes = frozen_to_bytes(&frozen);
        let back = frozen_from_bytes(&bytes).expect("round trip");
        prop_assert_eq!(&back, &frozen, "decoded frozen graph differs");
        prop_assert_eq!(frozen_to_bytes(&back), bytes, "writer not byte-stable");
        let mut a = QueryEngine::new(&g).with_frozen(Arc::new(frozen));
        let mut b = QueryEngine::new(&g).with_frozen(Arc::new(back));
        prop_assert!(b.uses_frozen(), "reloaded frozen view must mount");
        for s in 0..n {
            for t in 0..n {
                let (s, t) = (VertexId(s as u32), VertexId(t as u32));
                if s == t {
                    continue;
                }
                let pa = a.shortest_path(s, t, CostModel::Length);
                let pb = b.shortest_path(s, t, CostModel::Length);
                prop_assert_eq!(
                    cost_of(&g, &pa, CostModel::Length).to_bits(),
                    cost_of(&g, &pb, CostModel::Length).to_bits(),
                    "reloaded frozen graph diverged on {:?}->{:?}", s, t
                );
            }
        }
    }

    /// Corrupt input must be rejected with a parse error — truncations
    /// and bit flips anywhere in the stream — never decoded into a
    /// structurally wrong graph that would then serve wrong answers.
    #[test]
    fn frozen_io_rejects_corruption(
        n in 2usize..MAX_N,
        coords in proptest::collection::vec((0.0f64..5000.0, 0.0f64..5000.0), MAX_N..MAX_N + 1),
        edges in proptest::collection::vec((0usize..MAX_N, 0usize..MAX_N, 1u32..60), 1..30),
        cut in 0usize..2048,
        at in 0usize..2048,
    ) {
        use pathrank::spatial::io::{frozen_from_bytes, frozen_to_bytes};
        let g = build_graph(n, &coords, &edges);
        let bytes = frozen_to_bytes(&FrozenGraph::freeze(&g));
        // Any strict prefix must fail (checksum trailer missing at the
        // very least).
        let cut = cut % bytes.len();
        prop_assert!(frozen_from_bytes(&bytes[..cut]).is_err(), "truncation at {} accepted", cut);
        // Any single bit flip must fail the magic, a bounds check or the
        // FNV-1a trailer.
        let mut flipped = bytes.clone();
        let at = at % flipped.len();
        flipped[at] ^= 0x40;
        prop_assert!(frozen_from_bytes(&flipped).is_err(), "bit flip at {} accepted", at);
    }
}
