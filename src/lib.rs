//! # PathRank — learning to rank paths in spatial networks
//!
//! A from-scratch Rust reproduction of *"Learning to Rank Paths in Spatial
//! Networks"* (Sean Bin Yang and Bin Yang, ICDE 2020).
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`spatial`] — road networks, routing (Dijkstra/A*/bidirectional),
//!   Yen's top-k and diversified top-k shortest paths, path similarity;
//! * [`traj`] — GPS trajectory simulation with hidden driver preferences
//!   and HMM map matching;
//! * [`nn`] — a minimal tape-based autodiff engine with Embedding, GRU,
//!   LSTM and Linear layers;
//! * [`embed`] — node2vec (biased random walks + skip-gram);
//! * [`core`] — the PathRank model, training-data generation (TkDI and
//!   D-TkDI), training loop, ranking metrics and the end-to-end pipeline.
//!
//! See `examples/quickstart.rs` for a three-minute tour.

pub use pathrank_core as core;
pub use pathrank_embed as embed;
pub use pathrank_nn as nn;
pub use pathrank_obs as obs;
pub use pathrank_spatial as spatial;
pub use pathrank_traj as traj;
