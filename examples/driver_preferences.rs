//! Demonstrates the paper's motivating observation: local drivers choose
//! paths that are neither shortest nor fastest.
//!
//! ```text
//! cargo run --release --example driver_preferences
//! ```
//!
//! Samples several synthetic drivers, routes each between the same O/D
//! pairs under their hidden preference cost, and compares the preferred
//! path against the shortest and fastest paths.

use pathrank::spatial::algo::dijkstra::shortest_path;
use pathrank::spatial::generators::{region_network, RegionConfig};
use pathrank::spatial::graph::{CostModel, VertexId};
use pathrank::spatial::similarity::{weighted_jaccard, EdgeWeight};
use pathrank::traj::preference::DriverPreference;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let g = region_network(&RegionConfig::paper_scale(), 2020);
    let n = g.vertex_count() as u32;
    let mut rng = StdRng::seed_from_u64(5);

    println!(
        "network: {} vertices / {} edges",
        g.vertex_count(),
        g.edge_count()
    );
    println!(
        "\n{:>7} {:>9} {:>11} {:>11} {:>12} {:>12}",
        "driver", "trip", "detour_len", "detour_time", "sim_shortest", "sim_fastest"
    );

    let mut neither = 0usize;
    let mut total = 0usize;
    for driver in 0..5u64 {
        let pref = DriverPreference::sample(&mut StdRng::seed_from_u64(driver + 1000));
        let costs = pref.edge_costs(&g);
        for trip in 0..4 {
            // Draw an O/D pair with a reasonable separation.
            let (s, t) = loop {
                let s = VertexId(rng.gen_range(0..n));
                let t = VertexId(rng.gen_range(0..n));
                let d = g.euclidean(s, t);
                if s != t && (1_500.0..8_000.0).contains(&d) {
                    break (s, t);
                }
            };
            let (Some(preferred), Some(short), Some(fast)) = (
                shortest_path(&g, s, t, CostModel::Custom(&costs)),
                shortest_path(&g, s, t, CostModel::Length),
                shortest_path(&g, s, t, CostModel::TravelTime),
            ) else {
                continue;
            };
            let sim_s = weighted_jaccard(&g, &preferred, &short, EdgeWeight::Length);
            let sim_f = weighted_jaccard(&g, &preferred, &fast, EdgeWeight::Length);
            total += 1;
            if sim_s < 0.999 && sim_f < 0.999 {
                neither += 1;
            }
            println!(
                "{driver:>7} {trip:>9} {:>10.1}% {:>10.1}% {sim_s:>12.3} {sim_f:>12.3}",
                (preferred.length_m(&g) / short.length_m(&g) - 1.0) * 100.0,
                (preferred.travel_time_s(&g) / fast.travel_time_s(&g) - 1.0) * 100.0,
            );
        }
    }
    println!(
        "\n{neither}/{total} preferred paths are neither the shortest nor the fastest path — \
         the signal PathRank learns to exploit."
    );
}
