//! Quickstart: the whole PathRank pipeline in one file, on a tiny
//! synthetic region (runs in ~a minute).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Steps: build a road network → simulate a fleet of drivers with hidden
//! preferences → generate labelled training data with diversified top-k
//! shortest paths → pre-train node2vec → train PathRank (PR-A2) → rank the
//! candidate paths of an unseen query.

use pathrank::core::candidates::{generate_group, CandidateConfig, Strategy};
use pathrank::core::eval::evaluate_model;
use pathrank::core::model::ModelConfig;
use pathrank::core::pipeline::{ExperimentConfig, Workbench};
use pathrank::core::trainer::TrainConfig;

fn main() {
    // 1. Shared environment: network, fleet, train/test trajectory split.
    //    `small_test` is a two-town region; swap in `paper_scale()` for the
    //    full experiment environment.
    let mut cfg = ExperimentConfig::small_test();
    cfg.sim.n_vehicles = 12;
    cfg.sim.trips_per_vehicle = 8;
    let mut wb = Workbench::new(cfg);
    println!(
        "network: {} vertices, {} edges; {} training / {} test trajectories",
        wb.graph.vertex_count(),
        wb.graph.edge_count(),
        wb.train_paths.len(),
        wb.test_paths.len()
    );

    // 2. Train PathRank PR-A2 with D-TkDI training data.
    let ccfg = CandidateConfig {
        k: 6,
        ..CandidateConfig::paper_default(Strategy::DTkDI)
    };
    let mcfg = ModelConfig::paper_default(32);
    let tcfg = TrainConfig {
        epochs: 6,
        lr: 2e-3,
        ..TrainConfig::default()
    };
    let (result, model) = wb.run_with_model(mcfg, ccfg, tcfg);
    println!("test metrics: {}", result.eval);

    // 3. Rank candidates for one held-out trajectory.
    let trajectory = wb.test_paths[0].clone();
    let group = generate_group(&wb.graph, &trajectory, &ccfg);
    println!(
        "\nranking {} candidates for query {:?} -> {:?}:",
        group.len(),
        trajectory.source(),
        trajectory.target()
    );
    let mut ranked: Vec<(f64, f64, usize)> = group
        .candidates
        .iter()
        .map(|c| {
            let vertices: Vec<u32> = c.path.vertices().iter().map(|v| v.0).collect();
            (model.score_path(&vertices) as f64, c.score, c.path.len())
        })
        .collect();
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!("{:>10} {:>12} {:>6}", "estimated", "ground-truth", "hops");
    for (est, truth, hops) in &ranked {
        println!("{est:>10.4} {truth:>12.4} {hops:>6}");
    }

    // 4. Sanity: the model should still agree with the labels on average.
    let test_group = [group];
    let check = evaluate_model(&model, &test_group);
    println!("\nthis query alone: {check}");
}
