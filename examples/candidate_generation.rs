//! Advanced routing demo: top-k vs *diversified* top-k shortest paths.
//!
//! ```text
//! cargo run --release --example candidate_generation
//! ```
//!
//! Shows why the paper's D-TkDI strategy matters: the plain top-k paths of
//! a road network are near-duplicates of each other, while the diversified
//! top-k paths are genuinely different route alternatives — much better
//! training data for a ranking model (and much better suggestions for a
//! navigation UI).

use pathrank::spatial::algo::diversified::{diversified_top_k, DiversifiedConfig};
use pathrank::spatial::algo::yen::yen_k_shortest;
use pathrank::spatial::generators::{region_network, RegionConfig};
use pathrank::spatial::graph::{CostModel, VertexId};
use pathrank::spatial::path::Path;
use pathrank::spatial::similarity::{weighted_jaccard, EdgeWeight};
use pathrank::spatial::Graph;

fn mean_pairwise_similarity(g: &Graph, paths: &[(Path, f64)]) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for i in 0..paths.len() {
        for j in (i + 1)..paths.len() {
            total += weighted_jaccard(g, &paths[i].0, &paths[j].0, EdgeWeight::Length);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

fn describe(g: &Graph, label: &str, paths: &[(Path, f64)]) {
    println!("\n== {label} ({} paths) ==", paths.len());
    println!(
        "{:>4} {:>10} {:>10} {:>6}",
        "#", "length_m", "time_s", "hops"
    );
    for (i, (p, _)) in paths.iter().enumerate() {
        println!(
            "{:>4} {:>10.0} {:>10.0} {:>6}",
            i + 1,
            p.length_m(g),
            p.travel_time_s(g),
            p.len()
        );
    }
    println!(
        "mean pairwise weighted-Jaccard: {:.3}",
        mean_pairwise_similarity(g, paths)
    );
}

fn main() {
    let g = region_network(&RegionConfig::paper_scale(), 2020);
    let n = g.vertex_count() as u32;
    let (s, t) = (VertexId(42 % n), VertexId(n - 7));
    println!(
        "network: {} vertices / {} edges; query {:?} -> {:?}",
        g.vertex_count(),
        g.edge_count(),
        s,
        t
    );

    let k = 6;
    let plain = yen_k_shortest(&g, s, t, CostModel::Length, k);
    describe(&g, "TkDI: plain top-k shortest paths", &plain);

    let cfg = DiversifiedConfig {
        threshold: 0.6,
        ..DiversifiedConfig::with_k(k)
    };
    let diverse = diversified_top_k(&g, s, t, CostModel::Length, &cfg);
    describe(&g, "D-TkDI: diversified top-k (threshold 0.6)", &diverse);

    let plain_sim = mean_pairwise_similarity(&g, &plain);
    let diverse_sim = mean_pairwise_similarity(&g, &diverse);
    println!(
        "\ndiversification cut mean pairwise overlap from {plain_sim:.3} to {diverse_sim:.3} \
         ({}x more diverse)",
        if diverse_sim > 0.0 {
            (plain_sim / diverse_sim).round()
        } else {
            f64::INFINITY
        }
    );
}
