//! GPS map-matching demo: recover the driven path from a noisy trace.
//!
//! ```text
//! cargo run --release --example map_matching
//! ```
//!
//! Simulates trips with increasing GPS noise and reports how accurately
//! the HMM map matcher recovers the true path (weighted Jaccard between
//! the matched and the driven path).

use pathrank::spatial::generators::{region_network, RegionConfig};
use pathrank::spatial::similarity::{weighted_jaccard, EdgeWeight};
use pathrank::traj::mapmatch::{map_match, MapMatchConfig};
use pathrank::traj::simulator::{simulate_fleet, SimulationConfig};

fn main() {
    let g = region_network(&RegionConfig::small_test(), 7);
    println!(
        "network: {} vertices / {} edges",
        g.vertex_count(),
        g.edge_count()
    );
    println!(
        "\n{:>10} {:>9} {:>9} {:>12}",
        "noise_std", "trips", "matched", "mean_jaccard"
    );

    for noise in [2.0, 5.0, 10.0, 20.0, 35.0] {
        let sim = SimulationConfig {
            n_vehicles: 4,
            trips_per_vehicle: 5,
            gps_noise_std_m: noise,
            sampling_interval_s: 5.0,
            ..SimulationConfig::small_test()
        };
        let trips = simulate_fleet(&g, &sim, 99);
        let mm = MapMatchConfig {
            sigma_m: noise.max(4.0),
            ..MapMatchConfig::default()
        };

        let mut matched = 0usize;
        let mut total_sim = 0.0;
        for trip in &trips {
            if let Some(path) = map_match(&g, &trip.trace, &mm) {
                total_sim += weighted_jaccard(&g, &path, &trip.path, EdgeWeight::Length);
                matched += 1;
            }
        }
        let mean = if matched > 0 {
            total_sim / matched as f64
        } else {
            0.0
        };
        println!("{noise:>10.0} {:>9} {matched:>9} {mean:>12.3}", trips.len());
    }

    println!(
        "\nAccuracy degrades gracefully with noise; at survey-grade noise the \
         matcher recovers the driven path almost exactly."
    );
}
