//! Offline stand-in for `crossbeam` (see `vendor/README.md`).
//!
//! Only `crossbeam::thread::scope` is provided, implemented on top of
//! `std::thread::scope` (stable since 1.63), with crossbeam's call
//! signatures: the scope closure receives `&Scope`, `spawn` closures take
//! the scope as an argument, and `scope` returns a `Result`.

#![warn(missing_docs)]

/// Scoped threads with crossbeam's API shape.
pub mod thread {
    use std::any::Any;

    /// A scope handle that can spawn borrowing threads.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the closure
        /// receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle(self.inner.spawn(move || f(&scope)))
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned; all
    /// spawned threads are joined before this returns. The `Err` variant
    /// exists for crossbeam signature compatibility: `std::thread::scope`
    /// propagates child panics by unwinding, so `Ok` is always returned.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4, 5, 6];
        let total: u64 = thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum()
        })
        .expect("scope succeeds");
        assert_eq!(total, 21);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let out = thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7u32).join().expect("inner"))
                .join()
                .expect("outer")
        })
        .expect("scope succeeds");
        assert_eq!(out, 7);
    }
}
