//! Offline micro-benchmark harness, API-compatible with the subset of
//! `criterion` this workspace uses (see `vendor/README.md`): benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `sample_size`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: per benchmark, a short warm-up, then `sample_size`
//! timed samples (each a batch of iterations sized so one sample takes
//! ~`TARGET_SAMPLE_NS`); the reported figure is the median ns/iteration.
//! Like real criterion, running without `--bench` in the args (as
//! `cargo test` does for bench targets) executes each benchmark body once
//! as a smoke test instead of timing it.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

const TARGET_SAMPLE_NS: u128 = 8_000_000; // ~8 ms per sample
const WARMUP_NS: u128 = 30_000_000; // ~30 ms warm-up

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

/// Times closures handed to it by benchmark bodies.
pub struct Bencher {
    /// Median ns/iter measured by the last `iter` call.
    median_ns: f64,
    smoke_only: bool,
}

impl Bencher {
    /// Measures `f`, storing the median ns per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke_only {
            black_box(f());
            self.median_ns = f64::NAN;
            return;
        }
        // Warm up and estimate the cost of one iteration.
        let mut iters_done: u64 = 0;
        let warm_start = Instant::now();
        let mut one = loop {
            black_box(f());
            iters_done += 1;
            let spent = warm_start.elapsed().as_nanos();
            if spent >= WARMUP_NS || iters_done >= 1_000_000 {
                break (spent / iters_done as u128).max(1);
            }
        };
        // Timed samples: batches of ~TARGET_SAMPLE_NS.
        let samples = 15usize;
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let batch = (TARGET_SAMPLE_NS / one).clamp(1, 1 << 24) as u64;
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let spent = t0.elapsed().as_nanos();
            per_iter.push(spent as f64 / batch as f64);
            one = (spent / batch as u128).max(1);
        }
        per_iter.sort_by(f64::total_cmp);
        self.median_ns = per_iter[per_iter.len() / 2];
    }
}

/// One named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    smoke_only: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Compatibility no-op: sample sizing here is time-budget based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            median_ns: f64::NAN,
            smoke_only: self.smoke_only,
        };
        f(&mut b);
        self.report(&id.name, b.median_ns);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            median_ns: f64::NAN,
            smoke_only: self.smoke_only,
        };
        f(&mut b, input);
        self.report(&id.name, b.median_ns);
        self
    }

    fn report(&self, bench: &str, median_ns: f64) {
        if self.smoke_only {
            println!("bench {}/{}: ok (smoke)", self.name, bench);
        } else {
            println!(
                "bench {}/{}: median {:.0} ns/iter",
                self.name, bench, median_ns
            );
        }
    }

    /// Ends the group (compatibility no-op).
    pub fn finish(self) {}
}

/// The top-level benchmark manager.
pub struct Criterion {
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench`; cargo test does not. Without it we
        // only smoke-run the bodies, keeping `cargo test` fast.
        let timed = std::env::args().any(|a| a == "--bench");
        Criterion { smoke_only: !timed }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let smoke_only = self.smoke_only;
        BenchmarkGroup {
            name: name.into(),
            smoke_only,
            _parent: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn smoke_mode_runs_bodies_once() {
        // Under `cargo test` there is no `--bench` argument, so this runs
        // the closures exactly once each and must return quickly.
        let mut c = Criterion::default();
        assert!(c.smoke_only);
        demo(&mut c);
    }

    #[test]
    fn timed_mode_measures() {
        let mut b = Bencher {
            median_ns: f64::NAN,
            smoke_only: false,
        };
        b.iter(|| black_box(1u64 + 1));
        assert!(b.median_ns.is_finite() && b.median_ns > 0.0);
    }
}
