//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! performs all persistence through hand-rolled text formats
//! (`pathrank_spatial::io`, `pathrank_nn::serialize`), so the traits are
//! pure markers here: deriving them records serialisability intent and
//! keeps the type annotations source-compatible with the real crate. If a
//! later PR needs actual wire formats, swap this stub for real serde — no
//! call sites change.

#![warn(missing_docs)]

/// Marker: the type is serialisable (no-op stand-in).
pub trait Serialize {}

/// Marker: the type is deserialisable (no-op stand-in).
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
