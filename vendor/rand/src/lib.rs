//! Offline stand-in for the `rand` crate, covering exactly the 0.8-era API
//! surface this workspace uses (see `vendor/README.md` for why it exists).
//!
//! [`rngs::StdRng`] is a xoshiro256++ generator seeded through SplitMix64.
//! It does **not** produce the same streams as the real `StdRng` (ChaCha12);
//! everything in this workspace derives behaviour from explicit seeds and
//! only relies on determinism and reasonable statistical quality, both of
//! which xoshiro256++ provides.

#![warn(missing_docs)]

/// Low-level entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let r = rng.next_u64() as u128 % span;
                ((self.start as $wide as u128).wrapping_add(r)) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128 + 1;
                let r = rng.next_u64() as u128 % span;
                ((lo as $wide as u128).wrapping_add(r)) as $ty
            }
        }
    )*};
}

int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! float_sample_range {
    ($($ty:ty),* $(,)?) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                // Rejection keeps the half-open contract even when rounding
                // of `start + span * u` lands exactly on `end`.
                for _ in 0..8 {
                    let u = <$ty as Standard>::sample_standard(rng);
                    let v = self.start + (self.end - self.start) * u;
                    if v < self.end {
                        return v;
                    }
                }
                self.start
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$ty as Standard>::sample_standard(rng);
                (lo + (hi - lo) * u).min(hi)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value over `T`'s whole domain (floats: `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform value from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        /// A uniformly random element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&f));
            let i: usize = rng.gen_range(0..=4);
            assert!(i <= 4);
            let g: f32 = rng.gen_range(-0.5..0.5f32);
            assert!((-0.5..0.5f32).contains(&g));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        let mut sum = 0.0;
        const N: usize = 20_000;
        for _ in 0..N {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
            sum += u;
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "biased mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle staying sorted is ~impossible"
        );
    }

    #[test]
    fn choose_stays_in_slice() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
