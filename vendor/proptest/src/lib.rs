//! Offline mini property-testing framework, API-compatible with the subset
//! of `proptest` this workspace uses (see `vendor/README.md`):
//!
//! * the `proptest! { #![proptest_config(...)] #[test] fn f(x in strat) {..} }`
//!   macro form;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`;
//! * range strategies over integers and floats, tuple strategies,
//!   `proptest::collection::vec`, and `Just`.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with its inputs printed, which is enough to reproduce (generation is
//! deterministic per test and case index).

#![warn(missing_docs)]

/// Test-runner configuration and failure plumbing.
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case's assumptions were not met; it is skipped, not failed.
        Reject(String),
        /// A property assertion failed.
        Fail(String),
    }

    /// Result type the generated test bodies return.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($ty:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    /// A vector strategy: `size.start..size.end` elements of `elem`.
    pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec strategy: empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Splits a per-test seed and case index into an rng stream.
    pub fn case_rng(test_name: &str, attempt: u64) -> StdRng {
        // FNV-1a over the test name keeps different properties on
        // different streams while staying fully deterministic.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

/// Asserts a property inside a `proptest!` body; failure fails the case
/// (with formatted context) instead of panicking immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Skips the current case (without failing) when its precondition is unmet.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u32..10, v in proptest::collection::vec(0usize..5, 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut passed: u32 = 0;
            let mut attempt: u64 = 0;
            // A rejection budget like real proptest's, so a too-strict
            // prop_assume! aborts loudly instead of spinning forever.
            let max_attempts = (config.cases as u64) * 16 + 1024;
            while passed < config.cases {
                attempt += 1;
                assert!(
                    attempt <= max_attempts,
                    "proptest {}: too many rejected cases ({} attempts, {} passed)",
                    stringify!($name), attempt, passed,
                );
                let mut rng = $crate::__rt::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    attempt,
                );
                $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng); )+
                let case_desc = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                    $(&$arg,)+
                );
                let outcome: $crate::test_runner::TestCaseResult =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                        "proptest {} failed at case {} (attempt {}): {}\ninputs:{}",
                        stringify!($name), passed, attempt, msg, case_desc,
                    ),
                }
            }
        }
    )*};
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -2.0f64..2.0, n in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(n < 5);
        }

        #[test]
        fn tuples_and_vecs_compose(
            v in collection::vec((0usize..10, 0u32..100), 0..20),
        ) {
            prop_assert!(v.len() < 20);
            for (a, b) in &v {
                prop_assert!(*a < 10 && *b < 100, "bad element ({a}, {b})");
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(x in 0u32..7) {
            prop_assert!(x < 7);
        }
    }

    #[test]
    #[should_panic(expected = "proptest failing_property_inner failed")]
    fn failing_property_reports() {
        // The macro declares a plain fn here (no #[test]); calling it fires
        // the failure, which must panic with the property name and inputs.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn failing_property_inner(x in 0u32..4) {
                prop_assert!(x < 2, "x was {}", x);
            }
        }
        failing_property_inner();
    }
}
