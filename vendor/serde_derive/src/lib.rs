//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! offline serde stand-in: each emits an empty marker-trait impl.
//!
//! Implemented directly on `proc_macro` (no `syn`/`quote`, which the
//! offline environment cannot fetch). Supports plain structs and enums,
//! including lifetime/type generics without bounds; exotic generic
//! signatures fail loudly at compile time rather than silently.

use proc_macro::{TokenStream, TokenTree};

/// Emits `impl ::serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, generics) = parse_name_and_generics(input);
    format!(
        "impl{g} ::serde::Serialize for {name}{g} {{}}",
        g = generics
    )
    .parse()
    .expect("generated impl must parse")
}

/// Emits `impl<'de> ::serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, generics) = parse_name_and_generics(input);
    let out = if generics.is_empty() {
        format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
    } else {
        let params = generics.trim_start_matches('<').trim_end_matches('>');
        format!("impl<'de, {params}> ::serde::Deserialize<'de> for {name}<{params}> {{}}")
    };
    out.parse().expect("generated impl must parse")
}

/// Extracts the type name and a simple `<...>` generic parameter list (no
/// bounds or defaults supported) from a struct/enum definition.
fn parse_name_and_generics(input: TokenStream) -> (String, String) {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        let TokenTree::Ident(ident) = &tt else {
            continue;
        };
        let kw = ident.to_string();
        if kw != "struct" && kw != "enum" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            panic!("expected a name after `{kw}`");
        };
        let name = name.to_string();
        // Collect a `<...>` generic list if one follows.
        let mut generics = String::new();
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            let mut depth = 0i32;
            for tt in tokens.by_ref() {
                let s = tt.to_string();
                if s == "<" {
                    depth += 1;
                } else if s == ">" {
                    depth -= 1;
                }
                assert!(
                    !(s == ":" || s == "="),
                    "offline serde derive does not support bounds/defaults in \
                     generics of `{name}`; use the real serde for that"
                );
                generics.push_str(&s);
                if depth == 0 {
                    break;
                }
            }
        }
        return (name, generics);
    }
    panic!("derive input contained no `struct` or `enum`");
}
